(* Tests for the simplex LP solver: textbook instances, degenerate and
   infeasible/unbounded cases, and a property test against brute-force
   vertex enumeration on random 2-variable problems. *)

let check_float = Alcotest.(check (float 1e-6))

let optimal = function
  | Lp.Optimal s -> s
  | Lp.Infeasible -> Alcotest.fail "unexpected infeasible"
  | Lp.Unbounded -> Alcotest.fail "unexpected unbounded"
  | Lp.Timeout _ -> Alcotest.fail "unexpected timeout"

(* max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18, x,y >= 0.
   Classic Dantzig example: optimum (2, 6), value 36. *)
let test_textbook_max () =
  let p =
    {
      Lp.objective = [| 3.0; 5.0 |];
      constraints =
        [
          { Lp.coeffs = [| 1.0; 0.0 |]; relation = Lp.Le; rhs = 4.0 };
          { Lp.coeffs = [| 0.0; 2.0 |]; relation = Lp.Le; rhs = 12.0 };
          { Lp.coeffs = [| 3.0; 2.0 |]; relation = Lp.Le; rhs = 18.0 };
        ];
      bounds = [| Lp.nonneg; Lp.nonneg |];
    }
  in
  let s = optimal (Lp.maximize p) in
  check_float "value" 36.0 s.Lp.objective_value;
  check_float "x" 2.0 s.Lp.x.(0);
  check_float "y" 6.0 s.Lp.x.(1)

(* min x + y s.t. x + 2y >= 4, 3x + y >= 6, x,y >= 0 -> (1.6, 1.2), 2.8. *)
let test_textbook_min_ge () =
  let p =
    {
      Lp.objective = [| 1.0; 1.0 |];
      constraints =
        [
          { Lp.coeffs = [| 1.0; 2.0 |]; relation = Lp.Ge; rhs = 4.0 };
          { Lp.coeffs = [| 3.0; 1.0 |]; relation = Lp.Ge; rhs = 6.0 };
        ];
      bounds = [| Lp.nonneg; Lp.nonneg |];
    }
  in
  let s = optimal (Lp.minimize p) in
  check_float "value" 2.8 s.Lp.objective_value;
  Alcotest.(check bool) "feasible" true (Lp.check_feasible p s.Lp.x)

let test_equality_constraint () =
  (* min x - y s.t. x + y = 2, x,y in [0, 2] -> x=0, y=2, value -2. *)
  let p =
    {
      Lp.objective = [| 1.0; -1.0 |];
      constraints = [ { Lp.coeffs = [| 1.0; 1.0 |]; relation = Lp.Eq; rhs = 2.0 } ];
      bounds = [| (0.0, 2.0); (0.0, 2.0) |];
    }
  in
  let s = optimal (Lp.minimize p) in
  check_float "value" (-2.0) s.Lp.objective_value;
  check_float "sum" 2.0 (s.Lp.x.(0) +. s.Lp.x.(1))

let test_free_variables () =
  (* min x s.t. x >= -5 encoded through a constraint, x free. *)
  let p =
    {
      Lp.objective = [| 1.0 |];
      constraints = [ { Lp.coeffs = [| 1.0 |]; relation = Lp.Ge; rhs = -5.0 } ];
      bounds = [| Lp.free |];
    }
  in
  let s = optimal (Lp.minimize p) in
  check_float "free var reaches -5" (-5.0) s.Lp.x.(0)

let test_negative_rhs () =
  (* min -x s.t. -x >= -3 (i.e. x <= 3), x >= 0 -> x = 3. *)
  let p =
    {
      Lp.objective = [| -1.0 |];
      constraints = [ { Lp.coeffs = [| -1.0 |]; relation = Lp.Ge; rhs = -3.0 } ];
      bounds = [| Lp.nonneg |];
    }
  in
  let s = optimal (Lp.minimize p) in
  check_float "x" 3.0 s.Lp.x.(0)

let test_infeasible () =
  let p =
    {
      Lp.objective = [| 1.0 |];
      constraints =
        [
          { Lp.coeffs = [| 1.0 |]; relation = Lp.Ge; rhs = 5.0 };
          { Lp.coeffs = [| 1.0 |]; relation = Lp.Le; rhs = 1.0 };
        ];
      bounds = [| Lp.nonneg |];
    }
  in
  (match Lp.minimize p with
  | Lp.Infeasible -> ()
  | Lp.Optimal _ | Lp.Unbounded | Lp.Timeout _ -> Alcotest.fail "expected infeasible")

let test_unbounded () =
  let p =
    {
      Lp.objective = [| -1.0 |];
      constraints = [ { Lp.coeffs = [| 1.0 |]; relation = Lp.Ge; rhs = 0.0 } ];
      bounds = [| Lp.nonneg |];
    }
  in
  (match Lp.minimize p with
  | Lp.Unbounded -> ()
  | Lp.Optimal _ | Lp.Infeasible | Lp.Timeout _ -> Alcotest.fail "expected unbounded")

let test_no_constraints () =
  let p = { Lp.objective = [| 1.0; -2.0 |]; constraints = []; bounds = [| (0.0, 4.0); (0.0, 4.0) |] } in
  let s = optimal (Lp.minimize p) in
  check_float "x at lower" 0.0 s.Lp.x.(0);
  check_float "y at upper" 4.0 s.Lp.x.(1);
  let p2 = { p with bounds = [| Lp.free; (0.0, 4.0) |] } in
  (match Lp.minimize p2 with
  | Lp.Unbounded -> ()
  | Lp.Optimal _ | Lp.Infeasible | Lp.Timeout _ ->
    Alcotest.fail "expected unbounded without constraints")

let test_degenerate () =
  (* Multiple redundant constraints through the same vertex. *)
  let p =
    {
      Lp.objective = [| -1.0; -1.0 |];
      constraints =
        [
          { Lp.coeffs = [| 1.0; 1.0 |]; relation = Lp.Le; rhs = 2.0 };
          { Lp.coeffs = [| 2.0; 2.0 |]; relation = Lp.Le; rhs = 4.0 };
          { Lp.coeffs = [| 1.0; 0.0 |]; relation = Lp.Le; rhs = 2.0 };
          { Lp.coeffs = [| 0.0; 1.0 |]; relation = Lp.Le; rhs = 2.0 };
        ];
      bounds = [| Lp.nonneg; Lp.nonneg |];
    }
  in
  let s = optimal (Lp.minimize p) in
  check_float "value" (-2.0) s.Lp.objective_value

let test_all_zero_rhs_degenerate () =
  (* The barrier-synthesis shape: homogeneous rows, maximize the margin. *)
  let p =
    {
      Lp.objective = [| 0.0; -1.0 |];
      (* max m s.t. x - m >= 0, -x + 2m <= 0 with x in [-1, 1], m in [-1, 1]:
         optimal m = 0.5 at x = 1. *)
      constraints =
        [
          { Lp.coeffs = [| 1.0; -1.0 |]; relation = Lp.Ge; rhs = 0.0 };
          { Lp.coeffs = [| -1.0; 2.0 |]; relation = Lp.Le; rhs = 0.0 };
        ];
      bounds = [| (-1.0, 1.0); (-1.0, 1.0) |];
    }
  in
  let s = optimal (Lp.minimize p) in
  check_float "margin" 0.5 s.Lp.x.(1)

let both_engines f =
  f Lp.Tableau;
  f Lp.Revised

(* Regression (phase-1 scale): {1e-8·x ≥ 5e-16, 1e-8·x ≤ 1e-16} is genuinely
   infeasible (x ≥ 5e-8 vs x ≤ 1e-8), but row equilibration rescales the
   rows to {x ≥ 5e-8, -x ≥ -1e-8} whose phase-1 residual (~4e-8) slipped
   under the old absolute 1e-7 cutoff — the solver reported Optimal for an
   empty feasible region.  The cutoff must scale with the problem. *)
let test_tiny_infeasible () =
  let p =
    {
      Lp.objective = [| 1.0 |];
      constraints =
        [
          { Lp.coeffs = [| 1e-8 |]; relation = Lp.Ge; rhs = 5e-16 };
          { Lp.coeffs = [| 1e-8 |]; relation = Lp.Le; rhs = 1e-16 };
        ];
      bounds = [| (0.0, 1.0) |];
    }
  in
  both_engines (fun engine ->
      match Lp.minimize ~engine p with
      | Lp.Infeasible -> ()
      | Lp.Optimal s ->
        Alcotest.failf "tiny-magnitude infeasible system reported Optimal (x=%g)" s.Lp.x.(0)
      | Lp.Unbounded | Lp.Timeout _ -> Alcotest.fail "expected infeasible")

(* ...while a *feasible* tiny-magnitude system must not be rejected by the
   rescaled cutoff. *)
let test_tiny_feasible () =
  let p =
    {
      Lp.objective = [| 1.0 |];
      constraints =
        [
          { Lp.coeffs = [| 1e-8 |]; relation = Lp.Ge; rhs = 1e-16 };
          { Lp.coeffs = [| 1e-8 |]; relation = Lp.Le; rhs = 5e-16 };
        ];
      bounds = [| (0.0, 1.0) |];
    }
  in
  both_engines (fun engine ->
      match Lp.minimize ~engine p with
      | Lp.Optimal s -> check_float "x at scaled lower bound" 1e-8 s.Lp.x.(0)
      | Lp.Infeasible | Lp.Unbounded | Lp.Timeout _ -> Alcotest.fail "expected optimal")

(* Regression: check_feasible used to raise Invalid_argument (from
   Array.for_all2) when the bounds arity disagreed with the point, instead
   of answering the question it was asked. *)
let test_check_feasible_arity () =
  let p =
    {
      Lp.objective = [| 1.0; 1.0 |];
      constraints = [ { Lp.coeffs = [| 1.0; 1.0 |]; relation = Lp.Le; rhs = 2.0 } ];
      bounds = [| Lp.nonneg |] (* wrong arity: 1 bound for 2 variables *);
    }
  in
  Alcotest.(check bool) "bounds arity mismatch is false (not an exception)" false
    (Lp.check_feasible p [| 0.5; 0.5 |]);
  let q = { p with bounds = [| Lp.nonneg; Lp.nonneg |] } in
  Alcotest.(check bool) "point arity mismatch is false" false (Lp.check_feasible q [| 0.5 |]);
  let r =
    { q with constraints = [ { Lp.coeffs = [| 1.0 |]; relation = Lp.Le; rhs = 2.0 } ] }
  in
  Alcotest.(check bool) "constraint arity mismatch is false" false
    (Lp.check_feasible r [| 0.5; 0.5 |]);
  Alcotest.(check bool) "well-formed point accepted" true (Lp.check_feasible q [| 0.5; 0.5 |])

(* Regression: with absolute tolerance, a large-scale row rejected points
   whose violation is pure floating-point noise relative to the row's
   magnitude. *)
let test_check_feasible_relative_tol () =
  let p =
    {
      Lp.objective = [| 1.0 |];
      constraints = [ { Lp.coeffs = [| 1e9 |]; relation = Lp.Le; rhs = 1e9 } ];
      bounds = [| (0.0, 2.0) |];
    }
  in
  (* Violation 0.5 is ~5e-10 of the row scale: rounding noise, feasible. *)
  Alcotest.(check bool) "large-scale rounding noise tolerated" true
    (Lp.check_feasible ~tol:1e-7 p [| 1.0 +. 5e-10 |]);
  (* Violation 1e4 is ~1e-5 of the row scale: a real violation. *)
  Alcotest.(check bool) "large-scale genuine violation rejected" false
    (Lp.check_feasible ~tol:1e-7 p [| 1.0 +. 1e-5 |]);
  (* Bounds likewise scale: 2e9 + 1 is within 1e-7-relative of 2e9. *)
  let q = { p with constraints = []; bounds = [| (0.0, 2e9) |] } in
  Alcotest.(check bool) "large bound noise tolerated" true
    (Lp.check_feasible ~tol:1e-7 q [| 2e9 +. 1.0 |])

(* Beale's classic cycling LP: Dantzig pricing with a naive tie-break cycles
   forever at the degenerate origin vertex.  Both engines must terminate
   (anti-cycling) at the optimum -1/20. *)
let test_beale_cycling () =
  let p =
    {
      Lp.objective = [| -0.75; 150.0; -0.02; 6.0 |];
      constraints =
        [
          { Lp.coeffs = [| 0.25; -60.0; -0.04; 9.0 |]; relation = Lp.Le; rhs = 0.0 };
          { Lp.coeffs = [| 0.5; -90.0; -0.02; 3.0 |]; relation = Lp.Le; rhs = 0.0 };
          { Lp.coeffs = [| 0.0; 0.0; 1.0; 0.0 |]; relation = Lp.Le; rhs = 1.0 };
        ];
      bounds = [| Lp.nonneg; Lp.nonneg; Lp.nonneg; Lp.nonneg |];
    }
  in
  both_engines (fun engine ->
      (* The pivot cap turns a cycle into a visible Timeout instead of a hang. *)
      match Lp.minimize ~engine ~max_pivots:10_000 p with
      | Lp.Optimal s ->
        check_float "Beale optimum" (-0.05) s.Lp.objective_value;
        Alcotest.(check bool) "feasible" true (Lp.check_feasible ~tol:1e-6 p s.Lp.x)
      | Lp.Timeout _ -> Alcotest.fail "simplex cycled (pivot budget exhausted)"
      | Lp.Infeasible | Lp.Unbounded -> Alcotest.fail "expected optimal")

(* --- incremental API ---------------------------------------------------- *)

let test_incremental_warm_agrees () =
  (* Start from the Dantzig example, then add cuts one at a time; each warm
     resolve must agree with a cold tableau solve of the accumulated
     problem. *)
  let p =
    {
      Lp.objective = [| -3.0; -5.0 |];
      constraints =
        [
          { Lp.coeffs = [| 1.0; 0.0 |]; relation = Lp.Le; rhs = 4.0 };
          { Lp.coeffs = [| 0.0; 2.0 |]; relation = Lp.Le; rhs = 12.0 };
          { Lp.coeffs = [| 3.0; 2.0 |]; relation = Lp.Le; rhs = 18.0 };
        ];
      bounds = [| (0.0, 10.0); (0.0, 10.0) |];
    }
  in
  let inc = Lp.Incremental.create ~engine:Lp.Revised p in
  Alcotest.(check bool) "first solve is cold" false (Lp.Incremental.warm inc);
  let s0 = optimal (Lp.Incremental.resolve inc) in
  check_float "initial optimum" (-36.0) s0.Lp.objective_value;
  Alcotest.(check bool) "basis retained" true (Lp.Incremental.warm inc);
  let cuts =
    [
      ({ Lp.coeffs = [| 1.0; 1.0 |]; relation = Lp.Le; rhs = 7.0 }, -33.0);
      ({ Lp.coeffs = [| 0.0; 1.0 |]; relation = Lp.Le; rhs = 5.0 }, -31.0);
      ({ Lp.coeffs = [| 1.0; 1.0 |]; relation = Lp.Ge; rhs = 8.0 }, nan) (* infeasible *);
    ]
  in
  List.iteri
    (fun i (cut, expect) ->
      Lp.Incremental.add_constraint inc cut;
      let cold = Lp.minimize ~engine:Lp.Tableau (Lp.Incremental.problem inc) in
      match (Lp.Incremental.resolve inc, cold) with
      | Lp.Optimal w, Lp.Optimal c ->
        check_float (Printf.sprintf "cut %d warm value" i) expect w.Lp.objective_value;
        check_float (Printf.sprintf "cut %d cold value" i) c.Lp.objective_value
          w.Lp.objective_value
      | Lp.Infeasible, Lp.Infeasible ->
        Alcotest.(check bool) (Printf.sprintf "cut %d expected infeasible" i) true
          (Float.is_nan expect)
      | _ -> Alcotest.failf "cut %d: warm and cold disagree" i)
    cuts;
  Alcotest.(check int) "row count" 6 (Lp.Incremental.nrows inc)

let test_incremental_arity () =
  let p = { Lp.objective = [| 1.0 |]; constraints = []; bounds = [| (0.0, 1.0) |] } in
  let inc = Lp.Incremental.create p in
  Alcotest.check_raises "cut arity mismatch" (Invalid_argument "Lp: constraint arity mismatch")
    (fun () ->
      Lp.Incremental.add_constraint inc
        { Lp.coeffs = [| 1.0; 2.0 |]; relation = Lp.Le; rhs = 0.0 })

(* Brute-force reference for 2-variable LPs: evaluate all vertices formed by
   pairs of active constraints (including bounds). *)
let brute_force_2d objective rows bounds =
  let lines =
    rows
    @ [
        ([| 1.0; 0.0 |], fst bounds.(0));
        ([| 1.0; 0.0 |], snd bounds.(0));
        ([| 0.0; 1.0 |], fst bounds.(1));
        ([| 0.0; 1.0 |], snd bounds.(1));
      ]
  in
  let feasible (x, y) =
    x >= fst bounds.(0) -. 1e-7
    && x <= snd bounds.(0) +. 1e-7
    && y >= fst bounds.(1) -. 1e-7
    && y <= snd bounds.(1) +. 1e-7
    && List.for_all (fun (a, b) -> (a.(0) *. x) +. (a.(1) *. y) <= b +. 1e-7) rows
  in
  let best = ref None in
  List.iteri
    (fun i (a1, b1) ->
      List.iteri
        (fun j (a2, b2) ->
          if i < j then begin
            let det = (a1.(0) *. a2.(1)) -. (a1.(1) *. a2.(0)) in
            if Float.abs det > 1e-9 then begin
              let x = ((b1 *. a2.(1)) -. (b2 *. a1.(1))) /. det in
              let y = ((a1.(0) *. b2) -. (a2.(0) *. b1)) /. det in
              if feasible (x, y) then begin
                let v = (objective.(0) *. x) +. (objective.(1) *. y) in
                match !best with
                | Some bv when bv <= v -> ()
                | _ -> best := Some v
              end
            end
          end)
        lines)
    lines;
  !best

let prop_simplex_matches_brute_force =
  QCheck.Test.make ~name:"simplex matches brute-force vertex enumeration (2D)" ~count:300
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let n_rows = 1 + Rng.int rng 5 in
      let rows =
        List.init n_rows (fun _ ->
            ([| Rng.uniform rng (-2.0) 2.0; Rng.uniform rng (-2.0) 2.0 |], Rng.uniform rng 0.5 4.0))
      in
      let objective = [| Rng.uniform rng (-2.0) 2.0; Rng.uniform rng (-2.0) 2.0 |] in
      let bounds = [| (-3.0, 3.0); (-3.0, 3.0) |] in
      let p =
        {
          Lp.objective;
          constraints =
            List.map (fun (a, b) -> { Lp.coeffs = a; relation = Lp.Le; rhs = b }) rows;
          bounds;
        }
      in
      match (Lp.minimize p, brute_force_2d objective rows bounds) with
      | Lp.Optimal s, Some v ->
        Lp.check_feasible p s.Lp.x && Float.abs (s.Lp.objective_value -. v) < 1e-5
      | Lp.Infeasible, None -> true
      | Lp.Optimal _, None -> false
      | Lp.Infeasible, Some _ -> false
      | Lp.Unbounded, _ -> false
      | Lp.Timeout _, _ -> false (* impossible: box-bounded *))

let prop_solution_feasible =
  QCheck.Test.make ~name:"returned solutions are always feasible" ~count:200
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let n = 2 + Rng.int rng 4 in
      let n_rows = 1 + Rng.int rng 8 in
      let rows =
        List.init n_rows (fun _ ->
            {
              Lp.coeffs = Array.init n (fun _ -> Rng.uniform rng (-2.0) 2.0);
              relation = (match Rng.int rng 3 with 0 -> Lp.Le | 1 -> Lp.Ge | _ -> Lp.Eq);
              rhs = Rng.uniform rng (-2.0) 2.0;
            })
      in
      let p =
        {
          Lp.objective = Array.init n (fun _ -> Rng.uniform rng (-1.0) 1.0);
          constraints = rows;
          bounds = Array.init n (fun _ -> (-5.0, 5.0));
        }
      in
      match Lp.minimize p with
      | Lp.Optimal s -> Lp.check_feasible ~tol:1e-5 p s.Lp.x
      | Lp.Infeasible -> true
      | Lp.Unbounded | Lp.Timeout _ -> false)

(* Random LP generator for the differential properties: mixed relations,
   mixed bound shapes (boxed, shifted, mirrored, split/free, one-sided),
   and occasional degenerate rows (duplicated rows, zero rhs). *)
let random_problem rng =
  let n = 2 + Rng.int rng 4 in
  let n_rows = 1 + Rng.int rng 8 in
  let random_row () =
    {
      Lp.coeffs = Array.init n (fun _ -> Rng.uniform rng (-2.0) 2.0);
      relation = (match Rng.int rng 4 with 0 -> Lp.Ge | 1 -> Lp.Eq | _ -> Lp.Le);
      rhs = (if Rng.int rng 4 = 0 then 0.0 else Rng.uniform rng (-2.0) 2.0);
    }
  in
  let rows = ref [] in
  for _ = 1 to n_rows do
    let row = random_row () in
    rows := row :: !rows;
    (* Degenerate redundancy: same hyperplane twice. *)
    if Rng.int rng 5 = 0 then rows := { row with Lp.coeffs = Array.copy row.Lp.coeffs } :: !rows
  done;
  let bounds =
    Array.init n (fun _ ->
        match Rng.int rng 5 with
        | 0 -> Lp.free
        | 1 -> (0.0, infinity) (* split at zero *)
        | 2 -> (neg_infinity, Rng.uniform rng (-1.0) 3.0) (* mirrored *)
        | 3 -> (Rng.uniform rng (-4.0) (-1.0), Rng.uniform rng 1.0 4.0) (* shifted box *)
        | _ -> (-5.0, 5.0))
  in
  {
    Lp.objective = Array.init n (fun _ -> Rng.uniform rng (-1.0) 1.0);
    constraints = !rows;
    bounds;
  }

let values_agree a b = Float.abs (a -. b) <= 1e-6 *. (1.0 +. Float.max (Float.abs a) (Float.abs b))

let prop_engines_agree =
  QCheck.Test.make ~name:"tableau and revised engines agree (status + objective)" ~count:500
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let p = random_problem rng in
      match (Lp.minimize ~engine:Lp.Tableau p, Lp.minimize ~engine:Lp.Revised p) with
      | Lp.Optimal a, Lp.Optimal b ->
        values_agree a.Lp.objective_value b.Lp.objective_value
        && Lp.check_feasible ~tol:1e-5 p b.Lp.x
      | Lp.Infeasible, Lp.Infeasible -> true
      | Lp.Unbounded, Lp.Unbounded -> true
      | Lp.Timeout _, _ | _, Lp.Timeout _ -> false
      | _ -> false)

let prop_warm_resolve_agrees_with_cold =
  QCheck.Test.make
    ~name:"warm-started resolve after add_constraint = cold solve of augmented problem"
    ~count:200
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let n = 2 + Rng.int rng 4 in
      (* Box-bounded (the synthesis shape): never unbounded, so status is
         binary and every resolve exercises the warm path. *)
      let base =
        {
          Lp.objective = Array.init n (fun _ -> Rng.uniform rng (-1.0) 1.0);
          constraints =
            List.init
              (1 + Rng.int rng 4)
              (fun _ ->
                {
                  Lp.coeffs = Array.init n (fun _ -> Rng.uniform rng (-2.0) 2.0);
                  relation = (if Rng.int rng 3 = 0 then Lp.Ge else Lp.Le);
                  rhs = Rng.uniform rng (-1.0) 3.0;
                });
          bounds = Array.init n (fun _ -> (-4.0, 4.0));
        }
      in
      let inc = Lp.Incremental.create ~engine:Lp.Revised base in
      let steps = 1 + Rng.int rng 4 in
      let ok = ref true in
      ignore (Lp.Incremental.resolve inc);
      for _ = 1 to steps do
        Lp.Incremental.add_constraint inc
          {
            Lp.coeffs = Array.init n (fun _ -> Rng.uniform rng (-2.0) 2.0);
            relation = (if Rng.int rng 3 = 0 then Lp.Ge else Lp.Le);
            rhs = Rng.uniform rng (-1.0) 2.0;
          };
        let warm = Lp.Incremental.resolve inc in
        let cold = Lp.minimize ~engine:Lp.Tableau (Lp.Incremental.problem inc) in
        (match (warm, cold) with
        | Lp.Optimal a, Lp.Optimal b ->
          if
            not
              (values_agree a.Lp.objective_value b.Lp.objective_value
              && Lp.check_feasible ~tol:1e-5 (Lp.Incremental.problem inc) a.Lp.x)
          then ok := false
        | Lp.Infeasible, Lp.Infeasible -> ()
        | _ -> ok := false)
      done;
      !ok)

let () =
  Alcotest.run "lp"
    [
      ( "textbook",
        [
          Alcotest.test_case "dantzig max" `Quick test_textbook_max;
          Alcotest.test_case "min with >=" `Quick test_textbook_min_ge;
          Alcotest.test_case "equality" `Quick test_equality_constraint;
          Alcotest.test_case "free variables" `Quick test_free_variables;
          Alcotest.test_case "negative rhs" `Quick test_negative_rhs;
        ] );
      ( "edge cases",
        [
          Alcotest.test_case "infeasible" `Quick test_infeasible;
          Alcotest.test_case "unbounded" `Quick test_unbounded;
          Alcotest.test_case "no constraints" `Quick test_no_constraints;
          Alcotest.test_case "degenerate redundancy" `Quick test_degenerate;
          Alcotest.test_case "homogeneous margin LP" `Quick test_all_zero_rhs_degenerate;
        ] );
      ( "regressions",
        [
          Alcotest.test_case "tiny-magnitude infeasible" `Quick test_tiny_infeasible;
          Alcotest.test_case "tiny-magnitude feasible" `Quick test_tiny_feasible;
          Alcotest.test_case "check_feasible arity" `Quick test_check_feasible_arity;
          Alcotest.test_case "check_feasible relative tol" `Quick
            test_check_feasible_relative_tol;
          Alcotest.test_case "Beale cycling" `Quick test_beale_cycling;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "warm resolve agrees with cold" `Quick
            test_incremental_warm_agrees;
          Alcotest.test_case "cut arity rejected" `Quick test_incremental_arity;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_simplex_matches_brute_force;
          QCheck_alcotest.to_alcotest prop_solution_feasible;
          QCheck_alcotest.to_alcotest prop_engines_agree;
          QCheck_alcotest.to_alcotest prop_warm_resolve_agrees_with_cold;
        ] );
    ]
