(* End-to-end integration tests of the full verification pipeline
   (paper Figure 1), including failure injection with unsafe controllers
   and validation of the produced certificates against the definition of a
   strict barrier certificate. *)

let reference_system = Case_study.system_of_network Case_study.reference_controller

let verify ?config seed system =
  Engine.verify ?config ~rng:(Rng.create seed) system

let proved name report =
  match report.Engine.outcome with
  | Engine.Proved cert -> cert
  | Engine.Failed reason ->
    let msg =
      match reason with
      | Engine.Lp_failed s -> "LP failed: " ^ s
      | Engine.Cex_budget_exhausted -> "CEX budget exhausted"
      | Engine.Level_range_empty -> "level range empty"
      | Engine.Level_budget_exhausted -> "level budget exhausted"
      | Engine.Solver_inconclusive s -> "solver inconclusive: " ^ s
      | Engine.Timeout stage -> "deadline exceeded during " ^ stage
      | Engine.Seed_shortfall (got, wanted) ->
        Printf.sprintf "seed shortfall: %d of %d" got wanted
    in
    Alcotest.failf "%s: expected Proved, got %s" name msg

(* --- The paper's case study ---------------------------------------------- *)

let test_reference_controller_proved () =
  let report = verify 2024 reference_system in
  let cert = proved "reference" report in
  Alcotest.(check bool) "positive level" true (cert.Engine.level > 0.0);
  (* Certificate P must be positive definite (ellipsoidal level sets). *)
  let p = Template.p_matrix cert.Engine.template cert.Engine.coeffs in
  Alcotest.(check bool) "P SPD" true (Cholesky.is_positive_definite p)

let test_certificate_satisfies_barrier_conditions () =
  (* Spot-check the three strict-barrier conditions numerically on dense
     samples (the SMT solver already proved them; this guards the glue). *)
  let report = verify 2024 reference_system in
  let cert = proved "reference" report in
  let w = Template.w_eval cert.Engine.template cert.Engine.coeffs in
  let level = cert.Engine.level in
  let config = Engine.default_config in
  let rng = Rng.create 555 in
  (* (1) B <= 0 on X0. *)
  for _ = 1 to 2000 do
    let x = [| Rng.uniform rng (-1.0) 1.0; Rng.uniform rng (-.Float.pi /. 16.0) (Float.pi /. 16.0) |] in
    if w x -. level > 1e-9 then Alcotest.failf "B > 0 inside X0 at (%g, %g)" x.(0) x.(1)
  done;
  (* (2) B > 0 on (sampled) U: just outside the safe rect. *)
  let half_pi = Float.pi /. 2.0 in
  for _ = 1 to 2000 do
    let on_x_face = Rng.float rng < 0.5 in
    let x =
      if on_x_face then
        [| (if Rng.float rng < 0.5 then -5.001 else 5.001); Rng.uniform rng (-.(half_pi -. 0.05)) (half_pi -. 0.05) |]
      else [| Rng.uniform rng (-5.0) 5.0; (if Rng.float rng < 0.5 then -1.0 else 1.0) *. (half_pi -. 0.0499) |]
    in
    if w x -. level <= 0.0 then Alcotest.failf "B <= 0 on U at (%g, %g)" x.(0) x.(1)
  done;
  (* (3) ∇W·f < 0 on a dense grid over D \ X0. *)
  let grads = Template.grad_exprs cert.Engine.template cert.Engine.coeffs in
  let lie d th =
    let env = [ (Error_dynamics.var_derr, d); (Error_dynamics.var_theta_err, th) ] in
    let f = reference_system.Engine.numeric_field 0.0 [| d; th |] in
    (Expr.eval_env env grads.(0) *. f.(0)) +. (Expr.eval_env env grads.(1) *. f.(1))
  in
  let inside_x0 d th = Float.abs d <= 1.0 && Float.abs th <= Float.pi /. 16.0 in
  Array.iter
    (fun d ->
      Array.iter
        (fun th ->
          if not (inside_x0 d th) then begin
            let v = lie d th in
            if v >= -.config.Engine.gamma then
              Alcotest.failf "∇W·f = %g >= -γ at (%g, %g)" v d th
          end)
        (Floatx.linspace (-.(half_pi -. 0.05)) (half_pi -. 0.05) 41))
    (Floatx.linspace (-5.0) 5.0 41)

let test_widened_controllers_proved () =
  List.iter
    (fun width ->
      let system = Case_study.system_of_network (Case_study.controller_of_width width) in
      let report = verify 11 system in
      ignore (proved (Printf.sprintf "width %d" width) report))
    [ 10; 40 ]

let test_pretrained_controller_proved () =
  (* The CMA-ES-trained controller shipped with the repository. *)
  let path = "../data/trained_nh10.nn" in
  if Sys.file_exists path then begin
    let net = Nn.load path in
    let system = Case_study.system_of_network net in
    let report = verify 7 system in
    let cert = proved "pretrained" report in
    Alcotest.(check bool) "level positive" true (cert.Engine.level > 0.0)
  end

let test_determinism () =
  let r1 = verify 99 reference_system and r2 = verify 99 reference_system in
  match (r1.Engine.outcome, r2.Engine.outcome) with
  | Engine.Proved c1, Engine.Proved c2 ->
    Alcotest.(check (float 1e-12)) "same level" c1.Engine.level c2.Engine.level;
    Alcotest.(check bool) "same coeffs" true (c1.Engine.coeffs = c2.Engine.coeffs)
  | _ -> Alcotest.fail "both runs should prove"

let test_stats_populated () =
  let report = verify 2024 reference_system in
  let st = report.Engine.stats in
  Alcotest.(check bool) "iterations >= 1" true (st.Engine.candidate_iterations >= 1);
  Alcotest.(check bool) "level iterations >= 1" true (st.Engine.level_iterations >= 1);
  Alcotest.(check bool) "lp time > 0" true (st.Engine.lp_time > 0.0);
  Alcotest.(check bool) "smt5 called" true (st.Engine.smt5_calls >= 1);
  Alcotest.(check bool) "rows recorded" true (st.Engine.lp_rows > 0);
  Alcotest.(check bool) "total covers parts" true
    (st.Engine.total_time >= st.Engine.lp_time +. st.Engine.smt5_time)

(* --- Failure injection ----------------------------------------------------- *)

let constant_controller c =
  Nn.of_layers ~input_dim:2
    [ { Nn.weights = [| [| 0.0; 0.0 |] |]; biases = [| c |]; activation = Nn.Linear } ]

let test_unsafe_zero_controller () =
  (* u = 0: θerr never changes, derr drifts — nothing decreases.  The
     pipeline must fail, not prove. *)
  let system = Case_study.system_of_network (constant_controller 0.0) in
  let report = verify 5 system in
  (match report.Engine.outcome with
  | Engine.Proved _ -> Alcotest.fail "proved an unsafe (zero) controller"
  | Engine.Failed _ -> ())

let test_unsafe_destabilizing_controller () =
  (* u = -0.5·tanh(derr) - 0.5·tanh(θerr): positive feedback. *)
  let bad =
    Nn.of_layers ~input_dim:2
      [
        {
          Nn.weights = [| [| 1.0; 0.0 |]; [| 0.0; 1.0 |] |];
          biases = [| 0.0; 0.0 |];
          activation = Nn.Tansig;
        };
        { Nn.weights = [| [| -0.5; -0.5 |] |]; biases = [| 0.0 |]; activation = Nn.Linear };
      ]
  in
  let system = Case_study.system_of_network bad in
  let report = verify 5 system in
  (match report.Engine.outcome with
  | Engine.Proved _ -> Alcotest.fail "proved a destabilizing controller"
  | Engine.Failed _ -> ())

let test_saturated_controller_rejected () =
  (* u = +1 constant: rotates forever, no barrier. *)
  let system = Case_study.system_of_network (constant_controller 1.0) in
  let report = verify 5 system in
  match report.Engine.outcome with
  | Engine.Proved _ -> Alcotest.fail "proved a constant-turn controller"
  | Engine.Failed _ -> ()

(* --- Config variations ------------------------------------------------------ *)

let test_lie_mode_pipeline () =
  let config =
    {
      Engine.default_config with
      Engine.synthesis =
        {
          Engine.default_config.Engine.synthesis with
          Synthesis.mode = Synthesis.Lie_derivative;
        };
    }
  in
  let report = verify 2024 ~config reference_system in
  ignore (proved "lie mode" report)

let test_quadratic_linear_template () =
  let config = { Engine.default_config with Engine.template_kind = Template.Quadratic_linear } in
  let report = verify 2024 ~config reference_system in
  (* The augmented template must also succeed (linear terms may be ~0). *)
  let cert = proved "quadratic+linear" report in
  Alcotest.(check int) "five coefficients" 5 (Array.length cert.Engine.coeffs)

let test_forward_only_smt_pipeline () =
  (* Ablation A2: the pipeline still proves with contraction disabled, at
     higher branch counts. *)
  let config =
    {
      Engine.default_config with
      Engine.smt = { Solver.default_options with Solver.use_backward = false };
    }
  in
  let report = verify 2024 ~config reference_system in
  ignore (proved "forward-only" report)

let test_tight_cex_budget_inconclusive () =
  (* With zero CEX iterations allowed the pipeline cannot even run one LP:
     expect a failure, never a bogus proof. *)
  let config = { Engine.default_config with Engine.max_candidate_iters = 0 } in
  let report = verify 2024 ~config reference_system in
  match report.Engine.outcome with
  | Engine.Failed Engine.Cex_budget_exhausted -> ()
  | Engine.Failed _ -> ()
  | Engine.Proved _ -> Alcotest.fail "proved with zero budget"

let () =
  Alcotest.run "integration"
    [
      ( "pipeline",
        [
          Alcotest.test_case "reference controller proved" `Quick test_reference_controller_proved;
          Alcotest.test_case "certificate conditions hold" `Quick
            test_certificate_satisfies_barrier_conditions;
          Alcotest.test_case "widened controllers proved" `Slow test_widened_controllers_proved;
          Alcotest.test_case "pretrained controller proved" `Slow test_pretrained_controller_proved;
          Alcotest.test_case "determinism" `Slow test_determinism;
          Alcotest.test_case "stats populated" `Quick test_stats_populated;
        ] );
      ( "failure injection",
        [
          Alcotest.test_case "zero controller rejected" `Quick test_unsafe_zero_controller;
          Alcotest.test_case "destabilizing controller rejected" `Quick
            test_unsafe_destabilizing_controller;
          Alcotest.test_case "constant-turn controller rejected" `Quick
            test_saturated_controller_rejected;
        ] );
      ( "config variants",
        [
          Alcotest.test_case "lie-derivative mode" `Slow test_lie_mode_pipeline;
          Alcotest.test_case "quadratic+linear template" `Slow test_quadratic_linear_template;
          Alcotest.test_case "forward-only smt" `Slow test_forward_only_smt_pipeline;
          Alcotest.test_case "zero budget fails safely" `Quick test_tight_cex_budget_inconclusive;
        ] );
    ]
