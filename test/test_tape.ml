(* Tests for the compiled-tape pipeline: hash-consed DAG construction,
   tape/tree evaluation parity, tape HC4 soundness and tightness versus the
   tree contractor, the solver's compile-once-per-disjunct contract, and
   tree/tape engine verdict agreement (including the Dubins barrier
   conditions). *)

let x = Expr.var "x"

let y = Expr.var "y"

let index_of_xy v =
  if String.equal v "x" then 0
  else if String.equal v "y" then 1
  else Alcotest.failf "unexpected variable %s" v

let atom_of f =
  match f with Formula.Atom a -> a | _ -> Alcotest.fail "expected atom"

(* --- DAG --------------------------------------------------------------- *)

let test_dag_cse () =
  (* tanh(x+y) occurs three times in the tree but must be one DAG node. *)
  let s = Expr.tanh (Expr.( + ) x y) in
  let e = Expr.( + ) (Expr.( * ) s s) s in
  let pool = Dag.create () in
  let root = Dag.intern pool e in
  (* Distinct subterms: x, y, x+y, tanh, tanh*tanh, +root — 6 nodes versus
     a tree size of 11. *)
  Alcotest.(check int) "node count" 6 (Dag.node_count pool);
  Alcotest.(check bool) "smaller than tree" true (Dag.node_count pool < Expr.size e);
  (* Re-interning is a no-op returning the same id. *)
  Alcotest.(check int) "stable id" root (Dag.intern pool e);
  Alcotest.(check int) "no growth" 6 (Dag.node_count pool);
  (* Shared subterm resolves to one id from either path. *)
  Alcotest.(check int) "shared id" (Dag.intern pool s) (Dag.intern pool (Expr.tanh (Expr.( + ) x y)))

let test_dag_topological () =
  let e = Expr.( * ) (Expr.sin (Expr.( + ) x y)) (Expr.( + ) x (Expr.tanh y)) in
  let pool = Dag.create () in
  ignore (Dag.intern pool e : int);
  Array.iteri
    (fun id op ->
      let check o = Alcotest.(check bool) "operand before node" true (o < id) in
      match op with
      | Dag.Const _ | Dag.Var _ -> ()
      | Dag.Add (a, b) | Dag.Sub (a, b) | Dag.Mul (a, b) | Dag.Div (a, b) ->
        check a;
        check b
      | Dag.Neg a | Dag.Pow (a, _) | Dag.Sin a | Dag.Cos a | Dag.Atan a
      | Dag.Exp a | Dag.Log a | Dag.Tanh a | Dag.Sigmoid a | Dag.Sqrt a
      | Dag.Abs a ->
        check a)
    (Dag.ops pool)

let test_dag_zero_signs_distinct () =
  (* 0. and -0. compare structurally equal but divide differently; the
     const table keys by bit pattern to keep them apart. *)
  let pool = Dag.create () in
  let a = Dag.intern pool (Expr.Const 0.0) and b = Dag.intern pool (Expr.Const (-0.0)) in
  Alcotest.(check bool) "distinct nodes" true (a <> b)

let test_dag_partials_share_primal () =
  (* Derivatives of a controller re-mention tanh(net_i): interning them
     into the primal's pool must reuse those nodes wholesale. *)
  let net = Case_study.controller_of_width 10 in
  let e = Error_dynamics.symbolic_controller net in
  let dd = Expr.diff Error_dynamics.var_derr e
  and dt = Expr.diff Error_dynamics.var_theta_err e in
  let pool = Dag.create () in
  ignore (Dag.intern pool e : int);
  let primal_nodes = Dag.node_count pool in
  ignore (Dag.intern pool dd : int);
  ignore (Dag.intern pool dt : int);
  let total = Dag.node_count pool in
  let tree_total = Expr.size e + Expr.size dd + Expr.size dt in
  Alcotest.(check bool)
    (Printf.sprintf "shared: %d dag nodes (primal %d) vs %d tree nodes" total primal_nodes
       tree_total)
    true
    (total < tree_total)

(* --- Random expressions with forced shared subterms -------------------- *)

(* The [shared] argument is spliced in at the leaves, so the generated tree
   mentions it several times — exactly the structural sharing the tape is
   supposed to exploit (and the tree engine re-evaluates). *)
let gen_expr rng depth =
  let shared =
    match Rng.int rng 3 with
    | 0 -> Expr.tanh (Expr.( + ) x y)
    | 1 -> Expr.( * ) x y
    | _ -> Expr.sin (Expr.( - ) x y)
  in
  let rec gen depth =
    if depth = 0 then begin
      match Rng.int rng 5 with
      | 0 -> x
      | 1 -> y
      | 2 | 3 -> shared
      | _ -> Expr.const (Rng.uniform rng (-2.0) 2.0)
    end
    else begin
      match Rng.int rng 11 with
      | 0 -> Expr.( + ) (gen (depth - 1)) (gen (depth - 1))
      | 1 -> Expr.( - ) (gen (depth - 1)) (gen (depth - 1))
      | 2 -> Expr.( * ) (gen (depth - 1)) (gen (depth - 1))
      | 3 -> Expr.( / ) (gen (depth - 1)) (gen (depth - 1))
      | 4 -> Expr.sin (gen (depth - 1))
      | 5 -> Expr.tanh (gen (depth - 1))
      | 6 -> Expr.pow (gen (depth - 1)) 2
      | 7 -> Expr.abs (gen (depth - 1))
      | 8 -> Expr.sigmoid (gen (depth - 1))
      | 9 -> Expr.exp (gen (depth - 1))
      | _ -> Expr.neg (gen (depth - 1))
    end
  in
  gen depth

let compile_tape ?partials atom = Tape.compile ~index_of:index_of_xy ?partials atom

let prop_point_eval_parity =
  (* Tape point evaluation is the same float program as Expr.eval: results
     must agree bit-for-bit (including non-finite outcomes). *)
  QCheck.Test.make ~name:"tape point eval ≡ tree eval" ~count:500
    QCheck.(pair (int_range 0 1_000_000) (pair (float_range (-3.0) 3.0) (float_range (-3.0) 3.0)))
    (fun (seed, (px, py)) ->
      let e = gen_expr (Rng.create seed) 4 in
      let tree = Expr.eval_env [ ("x", px); ("y", py) ] e in
      let tape = compile_tape { Formula.expr = e; rel = Formula.Le0 } in
      let b = Tape.make_buffers tape in
      let v = Tape.eval_point tape b [| px; py |] in
      Int64.equal (Int64.bits_of_float tree) (Int64.bits_of_float v)
      || (Float.is_nan tree && Float.is_nan v))

let prop_interval_eval_parity =
  (* The tape's forward kernels are transcriptions of Interval's, and CSE
     cannot change a deterministic result — enclosures must be equal, which
     subsumes the soundness requirement that the tape encloses the tree. *)
  QCheck.Test.make ~name:"tape interval eval ≡ tree ieval" ~count:500
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let e = gen_expr rng 4 in
      let dx = Interval.make (Rng.uniform rng (-3.0) 0.0) (Rng.uniform rng 0.0 3.0)
      and dy = Interval.make (Rng.uniform rng (-3.0) 0.0) (Rng.uniform rng 0.0 3.0) in
      let tree = Expr.ieval (fun v -> if String.equal v "x" then dx else dy) e in
      let tape = compile_tape { Formula.expr = e; rel = Formula.Le0 } in
      let b = Tape.make_buffers tape in
      let tv = Tape.forward tape b [| dx; dy |] in
      Interval.equal tree tv)

let prop_tape_revise_sound =
  (* Tape HC4 never removes points that satisfy the constraint. *)
  QCheck.Test.make ~name:"tape HC4 keeps all solutions" ~count:300
    QCheck.(pair (int_range 0 1_000_000) (pair (float_range (-3.0) 3.0) (float_range (-3.0) 3.0)))
    (fun (seed, (px, py)) ->
      let e = gen_expr (Rng.create seed) 3 in
      let value = Expr.eval_env [ ("x", px); ("y", py) ] e in
      if not (Float.is_finite value) then true
      else begin
        let atom = atom_of (Formula.le e (Expr.const (value +. 1.0))) in
        let tape = compile_tape atom in
        let b = Tape.make_buffers tape in
        let domains = [| Interval.make (-3.0) 3.0; Interval.make (-3.0) 3.0 |] in
        match Tape.revise tape b domains with
        | _ -> Interval.mem px domains.(0) && Interval.mem py domains.(1)
        | exception Tape.Empty_box -> false
      end)

let prop_tape_at_least_as_tight =
  (* Shared-node contraction uses the meet of all parents' requirements, so
     one tape pass must contract at least as much as one tree pass: tape
     domains ⊆ tree domains, and a tree-detected empty box is also
     tape-detected.  (The tape being *strictly* tighter, including pruning
     boxes the tree keeps, is allowed and expected.) *)
  QCheck.Test.make ~name:"tape HC4 at least as tight as tree HC4" ~count:300
    QCheck.(pair (int_range 0 1_000_000) (pair (float_range (-2.0) 2.0) small_nat))
    (fun (seed, (c, rel_pick)) ->
      let e = gen_expr (Rng.create seed) 3 in
      let rhs = Expr.const c in
      let atom =
        atom_of
          (match rel_pick mod 3 with
          | 0 -> Formula.le e rhs
          | 1 -> Formula.lt e rhs
          | _ -> Formula.eq e rhs)
      in
      let ctree = Hc4.compile ~index_of:index_of_xy atom in
      let tape = compile_tape atom in
      let b = Tape.make_buffers tape in
      let dt = [| Interval.make (-3.0) 3.0; Interval.make (-3.0) 3.0 |] in
      let dp = Array.copy dt in
      let tree_alive = match Hc4.revise dt ctree with _ -> true | exception Hc4.Empty_box -> false in
      let tape_alive = match Tape.revise tape b dp with _ -> true | exception Tape.Empty_box -> false in
      if not tree_alive then not tape_alive
      else
        (not tape_alive)
        || (Interval.subset dp.(0) dt.(0) && Interval.subset dp.(1) dt.(1)))

let prop_forward_batch_parity =
  (* Each lane of a batched sweep runs the same transcribed kernels over
     flat slot indices, so it must agree bit-for-bit with a scalar forward
     of that lane's box — on every expression, including ones that go
     non-finite. *)
  QCheck.Test.make ~name:"batched forward ≡ scalar forward per lane" ~count:300
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let e = gen_expr rng 4 in
      let tape = compile_tape { Formula.expr = e; rel = Formula.Le0 } in
      let b = Tape.make_buffers tape in
      let box () =
        [|
          Interval.make (Rng.uniform rng (-3.0) 0.0) (Rng.uniform rng 0.0 3.0);
          Interval.make (Rng.uniform rng (-3.0) 0.0) (Rng.uniform rng 0.0 3.0);
        |]
      in
      let d1 = box () and d2 = box () in
      let bt = Tape.make_batch tape ~width:2 in
      let i1, i2 = Tape.forward_pair tape bt d1 d2 in
      Interval.equal i1 (Tape.forward tape b d1) && Interval.equal i2 (Tape.forward tape b d2))

let test_batch_edges () =
  let e = Expr.( + ) (Expr.pow x 2) (Expr.sin y) in
  let tape = compile_tape { Formula.expr = e; rel = Formula.Le0 } in
  let b = Tape.make_buffers tape in
  let bt = Tape.make_batch tape ~width:3 in
  Alcotest.(check int) "width" 3 (Tape.batch_width bt);
  let d = [| Interval.make 0.0 1.0; Interval.make (-1.0) 1.0 |] in
  let scalar = Tape.forward tape b d in
  let r1 = Tape.forward_batch tape bt [| d |] in
  Alcotest.(check int) "n=1 result length" 1 (Array.length r1);
  Alcotest.(check bool) "n=1 matches scalar" true (Interval.equal r1.(0) scalar);
  let r3 = Tape.forward_batch tape bt [| d; d; d |] in
  Alcotest.(check int) "n=width result length" 3 (Array.length r3);
  Array.iteri
    (fun i iv ->
      Alcotest.(check bool) (Printf.sprintf "lane %d matches scalar" i) true
        (Interval.equal iv scalar))
    r3;
  (match Tape.make_batch tape ~width:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "width 0 must be rejected");
  (match Tape.forward_batch tape bt [||] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty batch must be rejected");
  (match Tape.forward_batch tape bt [| d; d; d; d |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "overfull batch must be rejected");
  Alcotest.(check bool) "batched sweeps counted" true (Tape.batched_sweep_count () > 0)

(* --- NN export --------------------------------------------------------- *)

let test_nn_tape_parity () =
  (* The exported width-10 controller: point evaluation and interval
     forward through the tape agree with the tree on random points/boxes. *)
  let net = Case_study.controller_of_width 10 in
  let e = Error_dynamics.symbolic_controller net in
  let index_of v = if String.equal v Error_dynamics.var_derr then 0 else 1 in
  let tape = Tape.compile ~index_of { Formula.expr = e; rel = Formula.Le0 } in
  let b = Tape.make_buffers tape in
  let rng = Rng.create 42 in
  for _ = 1 to 100 do
    let d = Rng.uniform rng (-5.0) 5.0 and t = Rng.uniform rng (-1.5) 1.5 in
    let tree = Expr.eval_env [ (Error_dynamics.var_derr, d); (Error_dynamics.var_theta_err, t) ] e in
    let tv = Tape.eval_point tape b [| d; t |] in
    if not (Int64.equal (Int64.bits_of_float tree) (Int64.bits_of_float tv)) then
      Alcotest.failf "point eval diverges at (%g, %g): %h vs %h" d t tree tv
  done;
  for _ = 1 to 50 do
    let lo = Rng.uniform rng (-5.0) 0.0 in
    let dd = Interval.make lo (Rng.uniform rng lo 5.0) in
    let lo2 = Rng.uniform rng (-1.5) 0.0 in
    let tt = Interval.make lo2 (Rng.uniform rng lo2 1.5) in
    let tree =
      Expr.ieval (fun v -> if String.equal v Error_dynamics.var_derr then dd else tt) e
    in
    let tv = Tape.forward tape b [| dd; tt |] in
    if not (Interval.equal tree tv) then
      Alcotest.failf "interval eval diverges: %s vs %s" (Interval.to_string tree)
        (Interval.to_string tv)
  done;
  (* CSE must make the compiled program strictly smaller than the tree. *)
  Alcotest.(check bool) "tape smaller than tree" true (Tape.node_count tape < Expr.size e)

(* --- Solver integration ------------------------------------------------ *)

let circle_conjunction =
  Formula.and_
    [
      Formula.le (Expr.( + ) (Expr.pow x 2) (Expr.pow y 2)) (Expr.const 1.0);
      Formula.ge (Expr.( + ) x y) (Expr.const 1.6);
    ]

let bounds2 = [ ("x", -2.0, 2.0); ("y", -2.0, 2.0) ]

let test_compile_once_per_disjunct () =
  (* The tape engine compiles each disjunct's atoms once per solve call;
     parallel search must not add per-task compiles (tasks share the tapes
     and only allocate buffers). *)
  let compiles_for jobs =
    let before = Tape.compile_count () in
    let options = { Solver.default_options with Solver.jobs } in
    ignore (Solver.solve ~options ~bounds:bounds2 circle_conjunction);
    Tape.compile_count () - before
  in
  let seq = compiles_for 1 in
  let par = compiles_for 4 in
  Alcotest.(check int) "one compile per atom (2 atoms, 1 disjunct)" 2 seq;
  Alcotest.(check int) "parallel adds no compiles" seq par

let test_tree_engine_still_available () =
  (* The oracle engine must not compile tapes at all. *)
  let before = Tape.compile_count () in
  let options = { Solver.default_options with Solver.engine = Solver.Tree_eval } in
  (match fst (Solver.solve ~options ~bounds:bounds2 circle_conjunction) with
  | Solver.Unsat -> ()
  | _ -> Alcotest.fail "tree engine must refute the circle conjunction");
  Alcotest.(check int) "no tape compiles" 0 (Tape.compile_count () - before)

let verdict_name = function
  | Solver.Unsat -> "unsat"
  | Solver.Delta_sat _ -> "delta-sat"
  | Solver.Unknown -> "unknown"

let check_engines_agree name bounds f =
  List.iter
    (fun jobs ->
      let run engine =
        fst (Solver.solve ~options:{ Solver.default_options with Solver.engine; jobs } ~bounds f)
      in
      match (run Solver.Tree_eval, run Solver.Tape_eval) with
      | Solver.Unsat, Solver.Unsat | Solver.Unknown, Solver.Unknown -> ()
      | Solver.Delta_sat w1, Solver.Delta_sat w2 ->
        Alcotest.(check bool)
          (Printf.sprintf "%s (jobs=%d): tree witness delta-holds" name jobs)
          true (Formula.holds_delta 1e-2 w1 f);
        Alcotest.(check bool)
          (Printf.sprintf "%s (jobs=%d): tape witness delta-holds" name jobs)
          true (Formula.holds_delta 1e-2 w2 f)
      | v1, v2 ->
        Alcotest.failf "%s (jobs=%d): tree gives %s but tape gives %s" name jobs
          (verdict_name v1) (verdict_name v2))
    [ 1; 4 ]

let test_engine_agreement_formulas () =
  let circle_sat =
    Formula.and_
      [
        Formula.le (Expr.( + ) (Expr.pow x 2) (Expr.pow y 2)) (Expr.const 1.0);
        Formula.ge (Expr.( + ) x y) (Expr.const 1.3);
      ]
  in
  let disjunct_unsat =
    Formula.and_
      [
        Formula.or_ [ Formula.le x (Expr.const (-1.5)); Formula.ge x (Expr.const 1.5) ];
        Formula.le (Expr.pow x 2) (Expr.const 1.0);
      ]
  in
  let trig = Formula.eq (Expr.sin x) (Expr.const 0.5) in
  let tanh_unsat = Formula.gt (Expr.tanh x) (Expr.const 1.01) in
  check_engines_agree "circle unsat" bounds2 circle_conjunction;
  check_engines_agree "circle sat" bounds2 circle_sat;
  check_engines_agree "disjunction" [ ("x", -2.0, 2.0) ] disjunct_unsat;
  check_engines_agree "trig root" [ ("x", 0.0, 1.5707) ] trig;
  check_engines_agree "tanh bound" [ ("x", -100.0, 100.0) ] tanh_unsat

let test_engine_agreement_dubins () =
  (* Smoke-sized Dubins barrier queries (the bench_par --smoke setup):
     conditions (5), (6) and (7) must get the same verdict from both
     engines at jobs 1 and 4. *)
  let net = Case_study.reference_controller in
  let system = Case_study.system_of_network net in
  let config =
    { Engine.default_config with Engine.safe_rect = [| (-1.2, 1.2); (-0.6, 0.6) |] }
  in
  let template = Template.make Template.Quadratic system.Engine.vars in
  let cert = { Engine.template; coeffs = [| 1.0; 0.5; 2.0 |]; level = 0.0 } in
  let bounds =
    Array.to_list
      (Array.mapi
         (fun i v -> (v, fst config.Engine.safe_rect.(i), snd config.Engine.safe_rect.(i)))
         system.Engine.vars)
  in
  List.iter
    (fun (name, f) -> check_engines_agree name bounds f)
    [
      ("condition5", Engine.condition5_formula system config cert);
      ("condition6", Engine.condition6_formula cert);
      ("condition7", Engine.condition7_formula cert);
    ]

let () =
  Alcotest.run "tape"
    [
      ( "dag",
        [
          Alcotest.test_case "cse dedup" `Quick test_dag_cse;
          Alcotest.test_case "topological ids" `Quick test_dag_topological;
          Alcotest.test_case "signed zeros distinct" `Quick test_dag_zero_signs_distinct;
          Alcotest.test_case "partials share primal" `Quick test_dag_partials_share_primal;
        ] );
      ( "tape",
        [
          QCheck_alcotest.to_alcotest prop_point_eval_parity;
          QCheck_alcotest.to_alcotest prop_interval_eval_parity;
          QCheck_alcotest.to_alcotest prop_tape_revise_sound;
          QCheck_alcotest.to_alcotest prop_tape_at_least_as_tight;
          QCheck_alcotest.to_alcotest prop_forward_batch_parity;
          Alcotest.test_case "batch width edge cases" `Quick test_batch_edges;
          Alcotest.test_case "nn export parity" `Quick test_nn_tape_parity;
        ] );
      ( "solver",
        [
          Alcotest.test_case "compile once per disjunct" `Quick test_compile_once_per_disjunct;
          Alcotest.test_case "tree engine available" `Quick test_tree_engine_still_available;
          Alcotest.test_case "engine agreement (formulas)" `Quick test_engine_agreement_formulas;
          Alcotest.test_case "engine agreement (dubins)" `Slow test_engine_agreement_dubins;
        ] );
    ]
