(* Worker-pool and domain-safe-budget tests.

   The container running CI may expose a single core, so none of these
   tests assert wall-clock speedup — only ordering, exception semantics,
   exact concurrent accounting, and freedom from self-deadlock. *)

let test_map_matches_sequential () =
  let xs = Array.init 100 (fun i -> i) in
  let f i = (i * i) + 1 in
  Alcotest.(check (array int)) "jobs=4 equals Array.map" (Array.map f xs)
    (Pool.parallel_map ~jobs:4 f xs);
  Alcotest.(check (array int)) "jobs=1 equals Array.map" (Array.map f xs)
    (Pool.parallel_map ~jobs:1 f xs)

let test_map_preserves_order () =
  (* Tasks that finish out of order (larger indices sleep less) must still
     land at their input positions. *)
  let xs = Array.init 16 (fun i -> i) in
  let f i =
    Unix.sleepf (0.001 *. float_of_int (15 - i));
    i * 10
  in
  Alcotest.(check (array int)) "ordered" (Array.map (fun i -> i * 10) xs)
    (Pool.parallel_map ~jobs:4 f xs)

let test_map_empty_and_singleton () =
  Alcotest.(check (array int)) "empty" [||] (Pool.parallel_map ~jobs:4 (fun x -> x) [||]);
  Alcotest.(check (array int)) "singleton" [| 7 |]
    (Pool.parallel_map ~jobs:4 (fun x -> x + 1) [| 6 |])

let test_many_tiny_batches () =
  (* Wake-up-path regression: exhausted batches are unlinked from the queue
     once, at completion, rather than re-filtered by every worker wake.  A
     long run of tiny batches must make steady progress and leave the queue
     empty — a leak here keeps dead batches on the scan path forever. *)
  for i = 0 to 299 do
    let xs = Array.init 3 (fun j -> j + i) in
    let ys = Pool.parallel_map ~jobs:4 (fun v -> v * 2) xs in
    Alcotest.(check (array int))
      (Printf.sprintf "tiny batch %d" i)
      (Array.map (fun v -> v * 2) xs)
      ys
  done;
  Alcotest.(check int) "queue empty between calls" 0 (Pool.queue_length ())

exception Boom of int

let test_map_exception_propagates () =
  (* A raising task must surface in the caller, and the siblings must all
     have run to completion first (no half-finished batch left behind). *)
  let completed = Atomic.make 0 in
  let f i =
    if i = 3 then raise (Boom i);
    Atomic.incr completed;
    i
  in
  (match Pool.parallel_map ~jobs:4 f (Array.init 8 (fun i -> i)) with
  | _ -> Alcotest.fail "expected Boom to propagate"
  | exception Boom 3 -> ());
  Alcotest.(check int) "all non-raising siblings completed" 7 (Atomic.get completed)

let test_map_nested_no_deadlock () =
  (* A task that itself fans out must drain its own batch rather than wait
     on a worker slot; with more live batches than workers this deadlocks
     unless the caller participates. *)
  let outer = Array.init 4 (fun i -> i) in
  let f i =
    let inner = Pool.parallel_map ~jobs:4 (fun j -> j + (10 * i)) (Array.init 4 (fun j -> j)) in
    Array.fold_left ( + ) 0 inner
  in
  let sums = Pool.parallel_map ~jobs:4 f outer in
  Alcotest.(check (array int)) "nested sums" [| 6; 46; 86; 126 |] sums

let test_budget_concurrent_accounting () =
  (* N domains hammering consume_branches on one shared pool: the pool
     must drain exactly, never double-granting a branch. *)
  let total = 10_000 in
  let budget = Budget.make ~branches:total ()
  and granted = Atomic.make 0 in
  let worker _ =
    let continue_ = ref true in
    while !continue_ do
      match Budget.consume_branches budget 1 with
      | None -> Atomic.incr granted
      | Some Budget.Branch_budget -> continue_ := false
      | Some s -> Alcotest.failf "unexpected stop: %s" (Budget.string_of_stop s)
    done
  in
  ignore (Pool.parallel_map ~jobs:4 worker (Array.init 4 (fun i -> i)));
  (* consume-then-check semantics: the atomic fetch-and-add hands each call
     a distinct post-decrement value, and exactly those with a positive
     remainder are granted — [total - 1] of them, with no double grant no
     matter how the four domains interleave. *)
  Alcotest.(check int) "exact concurrent accounting" (total - 1) (Atomic.get granted);
  Alcotest.(check (option int)) "drained pool reports zero" (Some 0)
    (Budget.remaining_branches budget)

let test_switch_cancels () =
  let sw = Budget.switch () in
  let budget = Budget.with_switch sw Budget.unlimited in
  Alcotest.(check bool) "unfired" false (Budget.fired sw);
  Alcotest.(check bool) "live before fire" true (Budget.check budget = None);
  Budget.fire sw;
  Alcotest.(check bool) "fired" true (Budget.fired sw);
  (match Budget.check budget with
  | Some Budget.Cancelled -> ()
  | _ -> Alcotest.fail "fired switch must report Cancelled");
  (* The switch must not leak into the parent budget. *)
  Alcotest.(check bool) "parent unaffected" true (Budget.check Budget.unlimited = None)

let test_switch_first_witness_wins () =
  (* Simulate the solver's use: four siblings search, one finds a witness
     and fires the switch; the others observe cancellation at their next
     poll instead of running forever. *)
  let sw = Budget.switch () in
  let budget = Budget.with_switch sw Budget.unlimited in
  let f i =
    if i = 2 then begin
      Budget.fire sw;
      `Witness
    end
    else begin
      (* Poll until cancelled — bounded by a generous iteration cap so a
         broken switch fails the test instead of hanging it. *)
      let polls = ref 0 in
      while Budget.check budget = None && !polls < 10_000_000 do
        incr polls
      done;
      if Budget.check budget = None then `Hung else `Cancelled
    end
  in
  let outcomes = Pool.parallel_map ~jobs:4 f (Array.init 4 (fun i -> i)) in
  Array.iteri
    (fun i o ->
      match (i, o) with
      | 2, `Witness -> ()
      | 2, _ -> Alcotest.fail "task 2 must report the witness"
      | _, `Cancelled -> ()
      | _, `Witness -> Alcotest.fail "only task 2 fires"
      | _, `Hung -> Alcotest.fail "sibling never observed the fired switch")
    outcomes

let () =
  Alcotest.run "pool"
    [
      ( "parallel_map",
        [
          Alcotest.test_case "matches sequential map" `Quick test_map_matches_sequential;
          Alcotest.test_case "preserves input order" `Quick test_map_preserves_order;
          Alcotest.test_case "empty and singleton" `Quick test_map_empty_and_singleton;
          Alcotest.test_case "exception propagates after batch" `Quick
            test_map_exception_propagates;
          Alcotest.test_case "nested calls do not deadlock" `Quick test_map_nested_no_deadlock;
          Alcotest.test_case "many tiny batches leave queue empty" `Quick
            test_many_tiny_batches;
        ] );
      ( "budget",
        [
          Alcotest.test_case "concurrent branch accounting" `Quick
            test_budget_concurrent_accounting;
          Alcotest.test_case "switch cancels" `Quick test_switch_cancels;
          Alcotest.test_case "first witness wins" `Quick test_switch_first_witness_wins;
        ] );
    ]
