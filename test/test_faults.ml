(* Fault-injection harness for the resilience layer (the acceptance test of
   the robustness PR): every pipeline stage must return a *structured*
   failure within its deadline when the dynamics are faulty — no hangs, no
   NaN escaping into a certificate, no unstructured exceptions. *)

let reference_system = Case_study.system_of_network Case_study.reference_controller

let faulty_system injection =
  {
    reference_system with
    Engine.numeric_field = Faults.wrap_field injection reference_system.Engine.numeric_field;
  }

(* --- Ode-level guards -------------------------------------------------- *)

let test_simulate_truncates_nan () =
  let field = Faults.wrap_field (Faults.Nan_after 5) (fun _t x -> [| -.x.(0); -.x.(1) |]) in
  let tr = Ode.simulate field ~t0:0.0 ~x0:[| 1.0; 1.0 |] ~dt:0.1 ~steps:50 in
  Alcotest.(check bool) "trace truncated" true (Ode.trace_length tr < 51);
  Array.iter
    (fun x ->
      if not (Array.for_all Float.is_finite x) then
        Alcotest.fail "non-finite state left in trace")
    tr.Ode.states

let test_simulate_until_truncates_inf () =
  let field = Faults.wrap_field (Faults.Inf_after 3) (fun _t x -> [| -.x.(0) |]) in
  let tr = Ode.simulate_until field ~t0:0.0 ~x0:[| 1.0 |] ~dt:0.1 ~t_end:10.0 in
  Alcotest.(check bool) "truncated before t_end" true
    (tr.Ode.times.(Ode.trace_length tr - 1) < 10.0 -. 0.05);
  Array.iter
    (fun x ->
      if not (Array.for_all Float.is_finite x) then
        Alcotest.fail "non-finite state left in trace")
    tr.Ode.states

let test_rk45_rejects_nan () =
  let field = Faults.wrap_field (Faults.Nan_after 2) (fun _t x -> [| -.x.(0) |]) in
  match Ode.simulate_rk45 field ~t0:0.0 ~x0:[| 1.0 |] ~t_end:5.0 with
  | _ -> Alcotest.fail "rk45 must reject non-finite stage values"
  | exception Ode.Step_size_underflow _ -> ()

let test_divergence_truncates () =
  (* A geometrically exploding field leaves the safe rectangle (or
     overflows to infinity) quickly; the trace must end at finite states. *)
  let field = Faults.wrap_field (Faults.Divergence 4.0) (fun _t x -> [| x.(0); x.(1) |]) in
  let tr = Ode.simulate field ~t0:0.0 ~x0:[| 1.0; 1.0 |] ~dt:0.5 ~steps:200 in
  Array.iter
    (fun x ->
      if not (Array.for_all Float.is_finite x) then
        Alcotest.fail "divergent trace contains non-finite state")
    tr.Ode.states

(* --- Engine under faults ----------------------------------------------- *)

let failure_of report =
  match report.Engine.outcome with
  | Engine.Proved _ -> Alcotest.fail "faulty dynamics must not yield a certificate"
  | Engine.Failed reason -> reason

(* The headline acceptance criterion: a stalled field under a 2 s deadline
   returns Failed (Timeout _) with populated stats in well under 3 s. *)
let test_stalled_field_respects_deadline () =
  let system = faulty_system (Faults.Stall 0.05) in
  let budget = Budget.with_timeout 2.0 in
  let t0 = Timing.now () in
  let report = Engine.verify ~budget ~rng:(Rng.create 11) system in
  let elapsed = Timing.now () -. t0 in
  Alcotest.(check bool)
    (Printf.sprintf "returned in %.2f s (deadline 2 s)" elapsed)
    true (elapsed < 3.0);
  (match failure_of report with
  | Engine.Timeout _ -> ()
  | _ -> Alcotest.fail "expected a structured Timeout");
  (match report.Engine.stats.Engine.budget_stop with
  | Some Budget.Deadline -> ()
  | _ -> Alcotest.fail "stats must record the deadline stop");
  (* Per-stage stats are populated: the time went into simulation. *)
  Alcotest.(check bool) "sim time accounted" true
    (report.Engine.stats.Engine.sim_time > 0.0);
  Alcotest.(check bool) "total time accounted" true
    (report.Engine.stats.Engine.total_time > 0.0)

let test_nan_field_structured_failure () =
  (* NaN dynamics from the start: traces collapse to their initial sample,
     the LP sees only finite rows, and the pipeline fails structurally. *)
  let system = faulty_system (Faults.Nan_after 1) in
  let budget = Budget.with_timeout 30.0 in
  let report = Engine.verify ~budget ~rng:(Rng.create 12) system in
  ignore (failure_of report);
  List.iter
    (fun tr ->
      Array.iter
        (fun x ->
          if not (Array.for_all Float.is_finite x) then
            Alcotest.fail "NaN state reached the engine's traces")
        tr.Ode.states)
    report.Engine.traces

let test_divergent_field_no_hang () =
  let system = faulty_system (Faults.Divergence 10.0) in
  let budget = Budget.with_timeout 30.0 in
  let report = Engine.verify ~budget ~rng:(Rng.create 13) system in
  ignore (failure_of report)

let test_ill_conditioned_lp_survives () =
  (* Wildly mis-scaled field outputs produce ill-conditioned LP rows; the
     pipeline must fail structurally (or prove soundly), never crash. *)
  let system = faulty_system (Faults.Ill_conditioned 1e12) in
  let budget = Budget.with_timeout 30.0 in
  let report = Engine.verify ~budget ~rng:(Rng.create 14) system in
  match report.Engine.outcome with
  | Engine.Proved _ | Engine.Failed _ -> ()

(* --- Discrete engine under faults -------------------------------------- *)

let test_discrete_stalled_map_deadline () =
  let base = Discrete.of_network ~dt:0.1 Case_study.reference_controller in
  let system =
    { base with Discrete.map_numeric = Faults.wrap_map (Faults.Stall 0.05) base.Discrete.map_numeric }
  in
  let budget = Budget.with_timeout 2.0 in
  let t0 = Timing.now () in
  let report = Discrete.verify ~budget ~rng:(Rng.create 21) system in
  let elapsed = Timing.now () -. t0 in
  Alcotest.(check bool)
    (Printf.sprintf "returned in %.2f s (deadline 2 s)" elapsed)
    true (elapsed < 3.0);
  match report.Discrete.outcome with
  | Discrete.Proved _ -> Alcotest.fail "stalled map must not yield a certificate"
  | Discrete.Failed (Discrete.Timeout _) -> ()
  | Discrete.Failed _ -> Alcotest.fail "expected a structured Timeout"

let test_discrete_nan_map_truncates () =
  let base = Discrete.of_network ~dt:0.1 Case_study.reference_controller in
  let system =
    { base with Discrete.map_numeric = Faults.wrap_map (Faults.Nan_after 3) base.Discrete.map_numeric }
  in
  let config = Discrete.default_config ~dim:2 in
  let tr = Discrete.iterate system config [| 0.5; 0.1 |] in
  Array.iter
    (fun x ->
      if not (Array.for_all Float.is_finite x) then
        Alcotest.fail "non-finite state in discrete orbit")
    tr.Ode.states

(* --- CMA-ES under a stalled objective ----------------------------------- *)

let test_cmaes_budget_stop () =
  let t = Cmaes.create ~sigma:0.5 ~rng:(Rng.create 31) (Vec.zeros 2) in
  let budget = Budget.with_timeout 0.5 in
  let objective = Faults.delay_oracle 0.05 (fun x -> Vec.dot x x) in
  let t0 = Timing.now () in
  let _, _, reason = Cmaes.optimize ~budget ~max_iter:10_000 t objective in
  let elapsed = Timing.now () -. t0 in
  Alcotest.(check bool) "stopped near the deadline" true (elapsed < 3.0);
  match reason with
  | Cmaes.Budget_exceeded Budget.Deadline -> ()
  | _ -> Alcotest.fail "expected a Budget_exceeded stop"

(* --- LP pivot limit ----------------------------------------------------- *)

let test_lp_pivot_limit () =
  (* Any nontrivial LP with max_pivots 0 must report Timeout, not loop. *)
  let p =
    {
      Lp.objective = [| 1.0; 1.0 |];
      constraints =
        [
          { Lp.coeffs = [| 1.0; 2.0 |]; relation = Lp.Ge; rhs = 4.0 };
          { Lp.coeffs = [| 3.0; 1.0 |]; relation = Lp.Ge; rhs = 6.0 };
        ];
      bounds = [| Lp.nonneg; Lp.nonneg |];
    }
  in
  (match Lp.minimize ~max_pivots:0 p with
  | Lp.Timeout Budget.Branch_budget -> ()
  | _ -> Alcotest.fail "pivot limit 0 must time out");
  (* An expired budget stops the simplex at the first pivot poll. *)
  match Lp.minimize ~budget:(Budget.make ~timeout:0.0 ()) p with
  | Lp.Timeout Budget.Deadline -> ()
  | _ -> Alcotest.fail "expired budget must time out the simplex"

let () =
  Alcotest.run "faults"
    [
      ( "ode",
        [
          Alcotest.test_case "simulate truncates NaN" `Quick test_simulate_truncates_nan;
          Alcotest.test_case "simulate_until truncates Inf" `Quick test_simulate_until_truncates_inf;
          Alcotest.test_case "rk45 rejects NaN stages" `Quick test_rk45_rejects_nan;
          Alcotest.test_case "divergence stays finite" `Quick test_divergence_truncates;
        ] );
      ( "engine",
        [
          Alcotest.test_case "stalled field meets deadline" `Quick test_stalled_field_respects_deadline;
          Alcotest.test_case "NaN field fails structurally" `Quick test_nan_field_structured_failure;
          Alcotest.test_case "divergent field no hang" `Quick test_divergent_field_no_hang;
          Alcotest.test_case "ill-conditioned LP survives" `Quick test_ill_conditioned_lp_survives;
        ] );
      ( "discrete",
        [
          Alcotest.test_case "stalled map meets deadline" `Quick test_discrete_stalled_map_deadline;
          Alcotest.test_case "NaN map truncates orbit" `Quick test_discrete_nan_map_truncates;
        ] );
      ( "cmaes",
        [ Alcotest.test_case "budget stop" `Quick test_cmaes_budget_stop ] );
      ( "lp",
        [ Alcotest.test_case "pivot limit" `Quick test_lp_pivot_limit ] );
    ]
