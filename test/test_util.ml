(* Unit and property tests for the util library: PRNG determinism and
   statistics, float helpers. *)

let check_float = Alcotest.(check (float 1e-9))

let test_rng_determinism () =
  let a = Rng.create 123 and b = Rng.create 123 in
  for _ = 1 to 100 do
    check_float "same stream" (Rng.float a) (Rng.float b)
  done

let test_rng_distinct_seeds () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let xs = Array.init 32 (fun _ -> Rng.float a) in
  let ys = Array.init 32 (fun _ -> Rng.float b) in
  Alcotest.(check bool) "different streams" false (xs = ys)

let test_rng_copy_replays () =
  let a = Rng.create 7 in
  ignore (Rng.float a);
  let b = Rng.copy a in
  let xs = Array.init 16 (fun _ -> Rng.float a) in
  let ys = Array.init 16 (fun _ -> Rng.float b) in
  Alcotest.(check bool) "copy replays" true (xs = ys)

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let c = Rng.split a in
  let xs = Array.init 64 (fun _ -> Rng.float a) in
  let ys = Array.init 64 (fun _ -> Rng.float c) in
  Alcotest.(check bool) "split streams differ" false (xs = ys)

let test_rng_uniform_range () =
  let rng = Rng.create 99 in
  for _ = 1 to 1000 do
    let x = Rng.uniform rng 2.0 5.0 in
    Alcotest.(check bool) "in range" true (x >= 2.0 && x < 5.0)
  done

let test_rng_uniform_mean () =
  let rng = Rng.create 4 in
  let xs = Array.init 20_000 (fun _ -> Rng.uniform rng 0.0 1.0) in
  let m = Floatx.mean xs in
  Alcotest.(check bool) "mean near 0.5" true (Float.abs (m -. 0.5) < 0.02)

let test_rng_normal_moments () =
  let rng = Rng.create 5 in
  let xs = Array.init 50_000 (fun _ -> Rng.normal rng) in
  let m = Floatx.mean xs and s = Floatx.stddev xs in
  Alcotest.(check bool) "mean near 0" true (Float.abs m < 0.03);
  Alcotest.(check bool) "std near 1" true (Float.abs (s -. 1.0) < 0.03)

let test_rng_int_bounds () =
  let rng = Rng.create 6 in
  let seen = Array.make 10 false in
  for _ = 1 to 2000 do
    let k = Rng.int rng 10 in
    Alcotest.(check bool) "in [0,10)" true (k >= 0 && k < 10);
    seen.(k) <- true
  done;
  Alcotest.(check bool) "all values hit" true (Array.for_all Fun.id seen)

let test_shuffle_permutation () =
  let rng = Rng.create 11 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check bool) "is a permutation" true (sorted = Array.init 50 Fun.id);
  Alcotest.(check bool) "actually shuffled" false (a = Array.init 50 Fun.id)

let test_approx () =
  Alcotest.(check bool) "close" true (Floatx.approx 1.0 (1.0 +. 1e-12));
  Alcotest.(check bool) "far" false (Floatx.approx 1.0 1.1);
  Alcotest.(check bool) "absolute tolerance near zero" true (Floatx.approx 0.0 1e-13)

let test_clamp () =
  check_float "below" 0.0 (Floatx.clamp ~lo:0.0 ~hi:1.0 (-3.0));
  check_float "above" 1.0 (Floatx.clamp ~lo:0.0 ~hi:1.0 3.0);
  check_float "inside" 0.5 (Floatx.clamp ~lo:0.0 ~hi:1.0 0.5)

let test_linspace () =
  let xs = Floatx.linspace 0.0 1.0 5 in
  Alcotest.(check int) "count" 5 (Array.length xs);
  check_float "first" 0.0 xs.(0);
  check_float "last" 1.0 xs.(4);
  check_float "middle" 0.5 xs.(2)

let test_wrap_angle () =
  check_float "identity" 1.0 (Floatx.wrap_angle 1.0);
  check_float "wrap positive" (-.Floatx.pi /. 2.0) (Floatx.wrap_angle (1.5 *. Floatx.pi));
  check_float "wrap negative" (Floatx.pi /. 2.0) (Floatx.wrap_angle (-1.5 *. Floatx.pi));
  Alcotest.(check bool) "pi stays pi" true
    (Float.abs (Floatx.wrap_angle Floatx.pi -. Floatx.pi) < 1e-12)

let test_stats () =
  check_float "mean" 2.0 (Floatx.mean [| 1.0; 2.0; 3.0 |]);
  check_float "mean empty" 0.0 (Floatx.mean [||]);
  check_float "sum" 6.0 (Floatx.sum [| 1.0; 2.0; 3.0 |]);
  check_float "stddev constant" 0.0 (Floatx.stddev [| 5.0; 5.0; 5.0 |]);
  check_float "max" 3.0 (Floatx.max_elt [| 1.0; 3.0; 2.0 |]);
  check_float "min" 1.0 (Floatx.min_elt [| 1.0; 3.0; 2.0 |])

let test_timing_accumulator () =
  let acc = Timing.accumulator () in
  let r = Timing.record acc (fun () -> 42) in
  Alcotest.(check int) "result passes through" 42 r;
  Alcotest.(check int) "count" 1 (Timing.count acc);
  Alcotest.(check bool) "nonnegative time" true (Timing.total acc >= 0.0);
  Timing.reset acc;
  Alcotest.(check int) "reset count" 0 (Timing.count acc)

(* Run [f] against an injectable raw clock, always restoring the real one. *)
let with_fake_clock cell f =
  Timing.set_clock_for_tests (Some (fun () -> !cell));
  Fun.protect ~finally:(fun () -> Timing.set_clock_for_tests None) f

let test_timing_monotonic_under_backwards_jump () =
  let clock = ref 100.0 in
  with_fake_clock clock (fun () ->
      check_float "reads the raw clock" 100.0 (Timing.now ());
      clock := 50.0;  (* NTP-style backwards step *)
      check_float "never decreases" 100.0 (Timing.now ());
      clock := 100.5;
      check_float "resumes once raw catches up" 100.5 (Timing.now ()))

let test_timing_accumulator_clamped_under_backwards_jump () =
  let clock = ref 100.0 in
  with_fake_clock clock (fun () ->
      let acc = Timing.accumulator () in
      ignore (Timing.record acc (fun () -> clock := 50.0));
      Alcotest.(check bool) "delta clamped at zero" true (Timing.total acc >= 0.0);
      let _, dt = Timing.time (fun () -> clock := 10.0) in
      Alcotest.(check bool) "time clamped at zero" true (dt >= 0.0))

(* The headline regression: a backwards wall-clock jump must neither expire
   a Budget deadline early nor extend it. *)
let test_budget_immune_to_backwards_jump () =
  let clock = ref 100.0 in
  with_fake_clock clock (fun () ->
      let budget = Budget.with_timeout 10.0 in
      Alcotest.(check bool) "fresh budget alive" false (Budget.expired budget);
      clock := 50.0;  (* jump back 50s: deadline must not move *)
      Alcotest.(check bool) "not expired by the jump" false (Budget.expired budget);
      Alcotest.(check bool) "remaining not extended" true (Budget.remaining budget <= 10.0);
      clock := 109.0;  (* 9s of monotonic progress since creation *)
      Alcotest.(check bool) "still inside the deadline" false (Budget.expired budget);
      clock := 110.5;
      Alcotest.(check bool) "expires on monotonic time" true (Budget.expired budget);
      Alcotest.(check bool) "check reports deadline" true
        (match Budget.check budget with Some Budget.Deadline -> true | _ -> false))

(* Budget.child: the per-request budget of the serve daemon.  A child may
   never outlive its parent, a parent's cancellation must reach every
   child, and a child's private branch pool must not draw down the
   parent's. *)
let test_budget_child_never_outlives_parent () =
  let clock = ref 100.0 in
  with_fake_clock clock (fun () ->
      let parent = Budget.with_timeout 5.0 in
      (* Child asks for far more time than the parent has left. *)
      let lavish = Budget.child ~timeout:100.0 parent in
      Alcotest.(check bool) "clamped to parent remaining" true
        (Budget.remaining lavish <= 5.0);
      clock := 105.5;
      Alcotest.(check bool) "child expired with parent" true (Budget.expired lavish);
      (* A tighter child expires before the parent. *)
      clock := 200.0;
      let parent = Budget.with_timeout 50.0 in
      let tight = Budget.child ~timeout:1.0 parent in
      clock := 202.0;
      Alcotest.(check bool) "tight child expired" true (Budget.expired tight);
      Alcotest.(check bool) "parent still live" false (Budget.expired parent))

let test_budget_child_parent_cancel_propagates () =
  let sw = Budget.switch () in
  let parent = Budget.with_switch sw Budget.unlimited in
  let child = Budget.child ~timeout:1000.0 parent in
  Alcotest.(check bool) "child live before cancel" false (Budget.expired child);
  Budget.fire sw;
  Alcotest.(check bool) "parent cancel reaches child" true
    (match Budget.check child with Some Budget.Cancelled -> true | _ -> false);
  (* A child's own switch stays private: siblings and parent unaffected. *)
  let sw2 = Budget.switch () in
  let parent = Budget.unlimited in
  let a = Budget.with_switch sw2 (Budget.child parent) in
  let b = Budget.child parent in
  Budget.fire sw2;
  Alcotest.(check bool) "cancelled child stops" true (Budget.expired a);
  Alcotest.(check bool) "sibling unaffected" false (Budget.expired b);
  Alcotest.(check bool) "parent unaffected" false (Budget.expired parent)

let test_budget_child_private_branch_pool () =
  let parent = Budget.make ~branches:100 () in
  let isolated = Budget.child ~branches:5 parent in
  ignore (Budget.consume_branches isolated 5);
  Alcotest.(check bool) "child pool dry" true
    (match Budget.check isolated with Some Budget.Branch_budget -> true | _ -> false);
  Alcotest.(check (option int)) "parent pool untouched" (Some 100)
    (Budget.remaining_branches parent);
  (* Without ~branches the parent's pool is shared, as in sub_budget. *)
  let shared = Budget.child parent in
  ignore (Budget.consume_branches shared 40);
  Alcotest.(check (option int)) "shared pool drawn down" (Some 60)
    (Budget.remaining_branches parent)

let prop_wrap_angle_range =
  QCheck.Test.make ~name:"wrap_angle lands in (-pi, pi]" ~count:500
    QCheck.(float_range (-100.0) 100.0)
    (fun a ->
      let w = Floatx.wrap_angle a in
      w > -.Floatx.pi -. 1e-9 && w <= Floatx.pi +. 1e-9)

let prop_wrap_angle_equivalent =
  QCheck.Test.make ~name:"wrap_angle preserves the angle mod 2pi" ~count:500
    QCheck.(float_range (-50.0) 50.0)
    (fun a ->
      let w = Floatx.wrap_angle a in
      Float.abs (Float.sin (a -. w)) < 1e-9 && Float.abs (1.0 -. Float.cos (a -. w)) < 1e-9)

let prop_clamp_idempotent =
  QCheck.Test.make ~name:"clamp is idempotent" ~count:500
    QCheck.(triple (float_range (-10.) 10.) (float_range (-10.) 10.) (float_range (-10.) 10.))
    (fun (a, b, x) ->
      let lo = Float.min a b and hi = Float.max a b in
      let c = Floatx.clamp ~lo ~hi x in
      Floatx.clamp ~lo ~hi c = c && c >= lo && c <= hi)

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "distinct seeds" `Quick test_rng_distinct_seeds;
          Alcotest.test_case "copy replays" `Quick test_rng_copy_replays;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "uniform range" `Quick test_rng_uniform_range;
          Alcotest.test_case "uniform mean" `Quick test_rng_uniform_mean;
          Alcotest.test_case "normal moments" `Quick test_rng_normal_moments;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
        ] );
      ( "floatx",
        [
          Alcotest.test_case "approx" `Quick test_approx;
          Alcotest.test_case "clamp" `Quick test_clamp;
          Alcotest.test_case "linspace" `Quick test_linspace;
          Alcotest.test_case "wrap_angle" `Quick test_wrap_angle;
          Alcotest.test_case "stats" `Quick test_stats;
          QCheck_alcotest.to_alcotest prop_wrap_angle_range;
          QCheck_alcotest.to_alcotest prop_wrap_angle_equivalent;
          QCheck_alcotest.to_alcotest prop_clamp_idempotent;
        ] );
      ( "timing",
        [
          Alcotest.test_case "accumulator" `Quick test_timing_accumulator;
          Alcotest.test_case "monotonic under backwards jump" `Quick
            test_timing_monotonic_under_backwards_jump;
          Alcotest.test_case "accumulator clamped under backwards jump" `Quick
            test_timing_accumulator_clamped_under_backwards_jump;
          Alcotest.test_case "budget immune to backwards jump" `Quick
            test_budget_immune_to_backwards_jump;
        ] );
      ( "budget.child",
        [
          Alcotest.test_case "never outlives parent" `Quick
            test_budget_child_never_outlives_parent;
          Alcotest.test_case "parent cancel propagates" `Quick
            test_budget_child_parent_cancel_propagates;
          Alcotest.test_case "private branch pool" `Quick
            test_budget_child_private_branch_pool;
        ] );
    ]
