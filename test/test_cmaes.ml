(* Tests for CMA-ES: convergence on standard benchmark functions in both
   covariance modes, ask/tell contract, invariances. *)

let sphere x = Vec.dot x x

let rosenbrock x =
  let acc = ref 0.0 in
  for i = 0 to Vec.dim x - 2 do
    let a = x.(i + 1) -. (x.(i) *. x.(i)) and b = 1.0 -. x.(i) in
    acc := !acc +. (100.0 *. a *. a) +. (b *. b)
  done;
  !acc

(* Ellipsoid with condition number 1e4: tests covariance adaptation. *)
let ellipsoid x =
  let n = Vec.dim x in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    let w = 10.0 ** (4.0 *. float_of_int i /. float_of_int (max 1 (n - 1))) in
    acc := !acc +. (w *. x.(i) *. x.(i))
  done;
  !acc

let run ?mode ?(max_iter = 600) ?(sigma = 0.5) ~seed ~dim ~x0 objective =
  let rng = Rng.create seed in
  let t = Cmaes.create ?mode ~sigma ~rng (Vec.make dim x0) in
  let x, f, _ = Cmaes.optimize ~max_iter t objective in
  (x, f)

let test_sphere () =
  let _, f = run ~seed:1 ~dim:8 ~x0:3.0 sphere in
  Alcotest.(check bool) (Printf.sprintf "f=%.2e < 1e-10" f) true (f < 1e-10)

let test_rosenbrock () =
  let x, f = run ~seed:2 ~max_iter:1500 ~dim:5 ~x0:0.0 rosenbrock in
  Alcotest.(check bool) (Printf.sprintf "f=%.2e < 1e-8" f) true (f < 1e-8);
  Alcotest.(check bool) "x near ones" true (Float.abs (x.(0) -. 1.0) < 1e-3)

let test_ellipsoid () =
  let _, f = run ~seed:3 ~max_iter:1200 ~dim:6 ~x0:1.0 ellipsoid in
  Alcotest.(check bool) (Printf.sprintf "f=%.2e < 1e-8" f) true (f < 1e-8)

let test_diagonal_mode_sphere () =
  let _, f = run ~mode:`Diagonal ~seed:4 ~dim:12 ~x0:2.0 sphere in
  Alcotest.(check bool) (Printf.sprintf "diag f=%.2e < 1e-8" f) true (f < 1e-8)

let test_diagonal_mode_high_dim () =
  (* 300-dimensional separable problem — full mode would be slow. *)
  let _, f = run ~mode:`Diagonal ~seed:5 ~max_iter:1500 ~dim:300 ~x0:1.0 sphere in
  Alcotest.(check bool) (Printf.sprintf "high-dim f=%.2e < 1e-2" f) true (f < 1e-2)

let test_shifted_optimum () =
  let target = [| 2.0; -1.0; 0.5 |] in
  let objective x = Vec.dist2 x target ** 2.0 in
  let x, _ = run ~seed:6 ~dim:3 ~x0:0.0 objective in
  Alcotest.(check bool) "found shifted optimum" true (Vec.dist2 x target < 1e-5)

let test_determinism () =
  let go () = snd (run ~seed:42 ~max_iter:50 ~dim:4 ~x0:1.0 sphere) in
  Alcotest.(check (float 0.0)) "same seed same result" (go ()) (go ())

let test_ask_tell_contract () =
  let rng = Rng.create 7 in
  let t = Cmaes.create ~lambda:8 ~rng (Vec.make 3 1.0) in
  Alcotest.(check int) "lambda" 8 (Cmaes.lambda t);
  Alcotest.(check int) "dim" 3 (Cmaes.dim t);
  Alcotest.(check int) "generation 0" 0 (Cmaes.generation t);
  Alcotest.(check bool) "no best yet" true (Cmaes.best t = None);
  let pop = Cmaes.ask t in
  Alcotest.(check int) "population size" 8 (Array.length pop);
  Cmaes.tell t pop (Array.map sphere pop);
  Alcotest.(check int) "generation 1" 1 (Cmaes.generation t);
  (match Cmaes.best t with
  | Some (x, f) -> Alcotest.(check (float 1e-12)) "best matches" (sphere x) f
  | None -> Alcotest.fail "best missing after tell");
  Alcotest.check_raises "size mismatch"
    (Invalid_argument "Cmaes.tell: population size mismatch") (fun () ->
      Cmaes.tell t [| Vec.zeros 3 |] [| 0.0 |])

let test_best_monotone () =
  let rng = Rng.create 8 in
  let t = Cmaes.create ~rng (Vec.make 5 2.0) in
  let prev = ref infinity in
  for _ = 1 to 60 do
    let pop = Cmaes.ask t in
    Cmaes.tell t pop (Array.map sphere pop);
    match Cmaes.best t with
    | Some (_, f) ->
      if f > !prev +. 1e-12 then Alcotest.failf "best regressed: %g > %g" f !prev;
      prev := f
    | None -> Alcotest.fail "no best"
  done

let test_sigma_positive () =
  let rng = Rng.create 9 in
  let t = Cmaes.create ~rng (Vec.make 4 1.0) in
  for _ = 1 to 100 do
    let pop = Cmaes.ask t in
    Cmaes.tell t pop (Array.map rosenbrock pop);
    if Cmaes.sigma t <= 0.0 || not (Float.is_finite (Cmaes.sigma t)) then
      Alcotest.failf "sigma degenerated to %g" (Cmaes.sigma t)
  done

let test_stop_reasons () =
  let rng = Rng.create 10 in
  let t = Cmaes.create ~rng (Vec.make 3 1.0) in
  let _, _, reason = Cmaes.optimize ~max_iter:5 t sphere in
  (match reason with
  | Cmaes.Max_iterations -> ()
  | Cmaes.Tol_fun _ | Cmaes.Tol_sigma _ | Cmaes.Budget_exceeded _ ->
    Alcotest.fail "expected max-iterations stop");
  let rng = Rng.create 11 in
  let t = Cmaes.create ~rng (Vec.make 2 0.0) in
  (* Constant objective: the population spread is zero immediately. *)
  let _, _, reason = Cmaes.optimize ~max_iter:100 t (fun _ -> 1.0) in
  match reason with
  | Cmaes.Tol_fun _ -> ()
  | Cmaes.Max_iterations | Cmaes.Tol_sigma _ | Cmaes.Budget_exceeded _ ->
    Alcotest.fail "expected tol_fun stop"

let prop_quadratic_bowls =
  QCheck.Test.make ~name:"converges on random quadratic bowls" ~count:20
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Rng.create seed in
      let dim = 2 + Rng.int rng 4 in
      (* Random SPD quadratic via G'G + I. *)
      let g = Mat.init dim dim (fun _ _ -> Rng.normal rng) in
      let q = Mat.add (Mat.mul (Mat.transpose g) g) (Mat.identity dim) in
      let objective x = Mat.quadratic_form q x in
      let opt_rng = Rng.create (seed + 1) in
      let t = Cmaes.create ~rng:opt_rng (Vec.make dim 2.0) in
      let _, f, _ = Cmaes.optimize ~max_iter:400 t objective in
      f < 1e-8)

let () =
  Alcotest.run "cmaes"
    [
      ( "benchmarks",
        [
          Alcotest.test_case "sphere" `Quick test_sphere;
          Alcotest.test_case "rosenbrock" `Slow test_rosenbrock;
          Alcotest.test_case "ill-conditioned ellipsoid" `Slow test_ellipsoid;
          Alcotest.test_case "diagonal mode sphere" `Quick test_diagonal_mode_sphere;
          Alcotest.test_case "diagonal mode high-dim" `Slow test_diagonal_mode_high_dim;
          Alcotest.test_case "shifted optimum" `Quick test_shifted_optimum;
          QCheck_alcotest.to_alcotest prop_quadratic_bowls;
        ] );
      ( "api",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "ask/tell contract" `Quick test_ask_tell_contract;
          Alcotest.test_case "best-ever monotone" `Quick test_best_monotone;
          Alcotest.test_case "sigma stays positive" `Quick test_sigma_positive;
          Alcotest.test_case "stop reasons" `Quick test_stop_reasons;
        ] );
    ]
