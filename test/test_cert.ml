(* Certificate artifact subsystem: serialization round-trip, store
   corruption detection, independent audit (including structured rejection
   of every single-field tampering), warm-start CEGIS, and the cache
   cold / hit / warm flows.  Everything runs against the paper's Dubins
   case study with small controllers so the whole file stays fast. *)

let temp_root =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "sb_cert_test_%d" (Unix.getpid ()))

let fresh_store =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat temp_root (string_of_int !counter)

let network = Case_study.controller_of_width 10
let system = Case_study.system_of_network network
let config = Engine.default_config

(* One proved certificate, shared by the read-only tests. *)
let proved =
  lazy
    (let rng = Rng.create 7 in
     match (Engine.verify ~config ~rng system).Engine.outcome with
     | Engine.Proved cert -> cert
     | Engine.Failed _ -> Alcotest.fail "baseline verify failed to prove")

let artifact () =
  let fp = Artifact.fingerprint ~network system config in
  Artifact.make ~fingerprint:fp ~config ~stats:[ ("source", "test") ] (Lazy.force proved)

let check_verdict =
  Alcotest.testable
    (fun ppf v -> Format.pp_print_string ppf (Checker.string_of_verdict v))
    ( = )

let contains ~sub s =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* --- artifact serialization ------------------------------------------- *)

let test_roundtrip () =
  let a = artifact () in
  match Artifact.of_string (Artifact.to_string a) with
  | Error e -> Alcotest.failf "round-trip parse failed: %s" e
  | Ok b ->
    Alcotest.(check string) "fingerprint" a.Artifact.fingerprint.Artifact.combined
      b.Artifact.fingerprint.Artifact.combined;
    Alcotest.(check int) "coeff count" (Array.length a.Artifact.coeffs)
      (Array.length b.Artifact.coeffs);
    Array.iteri
      (fun i c ->
        Alcotest.(check int64) "coeff bits" (Int64.bits_of_float c)
          (Int64.bits_of_float b.Artifact.coeffs.(i)))
      a.Artifact.coeffs;
    Alcotest.(check int64) "level bits" (Int64.bits_of_float a.Artifact.level)
      (Int64.bits_of_float b.Artifact.level);
    Alcotest.(check (list (pair string string))) "stats" a.Artifact.stats b.Artifact.stats

let test_checksum_rejects_corruption () =
  let s = Artifact.to_string (artifact ()) in
  (* Flip one payload byte: every such corruption must fail the checksum. *)
  let i = String.index s 'v' in
  let corrupted = Bytes.of_string s in
  Bytes.set corrupted i 'w';
  (match Artifact.of_string (Bytes.to_string corrupted) with
  | Ok _ -> Alcotest.fail "corrupted artifact parsed"
  | Error e ->
    Alcotest.(check bool) "mentions checksum" true (contains ~sub:"checksum" e))

let test_truncation_rejected () =
  let s = Artifact.to_string (artifact ()) in
  match Artifact.of_string (String.sub s 0 (String.length s / 2)) with
  | Ok _ -> Alcotest.fail "truncated artifact parsed"
  | Error _ -> ()

let test_poly_roundtrip () =
  (* A polynomial-template artifact carries a parameterized
     [template poly <d>] line and must round-trip bit-exactly like the
     legacy kinds (whose lines are unchanged — cache compatibility). *)
  let base = artifact () in
  let template = Template.make (Template.Poly 4) base.Artifact.vars in
  let coeffs =
    Array.init (Template.dimension template) (fun i -> 0.125 *. float_of_int (i + 1))
  in
  let cert = { Engine.template; coeffs; level = 1.25 } in
  let fp = Artifact.fingerprint ~network system config in
  let a = Artifact.make ~fingerprint:fp ~config ~stats:[ ("source", "test") ] cert in
  let s = Artifact.to_string a in
  Alcotest.(check bool) "template poly 4 line present" true (contains ~sub:"template poly 4" s);
  match Artifact.of_string s with
  | Error e -> Alcotest.failf "poly round-trip parse failed: %s" e
  | Ok b ->
    (match b.Artifact.template_kind with
    | Template.Poly 4 -> ()
    | k -> Alcotest.failf "kind came back as %s" (Template.kind_to_string k));
    Alcotest.(check int) "coeff count" (Array.length coeffs) (Array.length b.Artifact.coeffs);
    Array.iteri
      (fun i c ->
        Alcotest.(check int64) "coeff bits" (Int64.bits_of_float c)
          (Int64.bits_of_float b.Artifact.coeffs.(i)))
      b.Artifact.coeffs

let test_poly_audit_certifies () =
  (* End-to-end over a genuinely non-ellipsoidal certificate: prove the
     registry's boxy scenario under Poly 4, export, re-load, audit. *)
  match Registry.find_scenario "poly-2d-boxy" with
  | None -> Alcotest.fail "registry scenario poly-2d-boxy missing"
  | Some entry -> (
    match Registry.elaborate entry.Registry.scenario with
    | Error msg -> Alcotest.failf "elaborate: %s" msg
    | Ok e -> (
      let sys = e.Scenario.closed.Plant.system in
      let cfg = e.Scenario.config in
      match (Engine.verify ~config:cfg ~rng:(Rng.create 7) sys).Engine.outcome with
      | Engine.Failed _ -> Alcotest.fail "poly-2d-boxy must prove under Poly 4"
      | Engine.Proved cert ->
        Alcotest.(check bool) "certificate is quartic" true
          (Template.kind cert.Engine.template = Template.Poly 4);
        let net = e.Scenario.closed.Plant.network in
        let fp = Artifact.fingerprint ?network:net ~plant:e.Scenario.closed.Plant.id sys cfg in
        let a =
          Artifact.make ~fingerprint:fp ~plant:e.Scenario.closed.Plant.id ~config:cfg cert
        in
        match Artifact.of_string (Artifact.to_string a) with
        | Error err -> Alcotest.failf "poly artifact reparse: %s" err
        | Ok reloaded ->
          let verdict, _ = Checker.audit ?network:net ~system:sys reloaded in
          Alcotest.check check_verdict "poly artifact certified" Checker.Certified verdict))

(* --- fingerprints ----------------------------------------------------- *)

let test_fingerprint_sensitivity () =
  let fp = Artifact.fingerprint ~network system config in
  let other_net = Case_study.controller_of_width 12 in
  let fp_net =
    Artifact.fingerprint ~network:other_net (Case_study.system_of_network other_net) config
  in
  Alcotest.(check bool) "different network, different combined" true
    (fp.Artifact.combined <> fp_net.Artifact.combined);
  Alcotest.(check string) "different network, same config hash" fp.Artifact.config_hash
    fp_net.Artifact.config_hash;
  let fp_gamma =
    Artifact.fingerprint ~network system { config with Engine.gamma = config.Engine.gamma *. 2.0 }
  in
  Alcotest.(check bool) "different gamma, different config hash" true
    (fp.Artifact.config_hash <> fp_gamma.Artifact.config_hash)

let test_fingerprint_ignores_execution_strategy () =
  let fp = Artifact.fingerprint ~network system config in
  let fp_par =
    Artifact.fingerprint ~network system
      {
        config with
        Engine.jobs = 8;
        smt = { config.Engine.smt with Solver.jobs = 8; engine = Solver.Tree_eval };
      }
  in
  Alcotest.(check string) "jobs/engine do not change the fingerprint" fp.Artifact.combined
    fp_par.Artifact.combined

(* --- store ------------------------------------------------------------ *)

let test_store_roundtrip () =
  let root = fresh_store () in
  let a = artifact () in
  let dir = Store.save ~root ~network a in
  Alcotest.(check string) "entry dir is the content address"
    (Store.dir_of ~root a.Artifact.fingerprint.Artifact.combined)
    dir;
  (match Store.load ~root a.Artifact.fingerprint.Artifact.combined with
  | Error _ -> Alcotest.fail "saved entry failed to load"
  | Ok entry ->
    Alcotest.(check bool) "network stored" true (entry.Store.network <> None);
    Alcotest.(check string) "fingerprint" a.Artifact.fingerprint.Artifact.combined
      entry.Store.artifact.Artifact.fingerprint.Artifact.combined);
  Alcotest.(check (list string)) "list" [ a.Artifact.fingerprint.Artifact.combined ]
    (Store.list ~root);
  match Store.load ~root "deadbeef" with
  | Error Store.Missing -> ()
  | _ -> Alcotest.fail "missing entry should report Missing"

let test_store_detects_corruption () =
  let root = fresh_store () in
  let a = artifact () in
  let dir = Store.save ~root a in
  let path = Filename.concat dir Store.cert_file in
  let ic = open_in_bin path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let oc = open_out_bin path in
  output_string oc (String.map (function '7' -> '8' | c -> c) contents);
  close_out oc;
  match Store.load ~root a.Artifact.fingerprint.Artifact.combined with
  | Error (Store.Corrupt _) -> ()
  | Error Store.Missing -> Alcotest.fail "corrupted entry reported Missing"
  | Ok _ -> Alcotest.fail "corrupted entry loaded"

(* --- checker ---------------------------------------------------------- *)

let audit ?network:net a =
  fst (Checker.audit ?network:net ~system a)

let test_audit_certifies_genuine () =
  Alcotest.check check_verdict "genuine artifact" Checker.Certified
    (audit ~network (artifact ()));
  (* Diversity engine: same verdict via the tree-walking evaluator. *)
  Alcotest.check check_verdict "diverse engine" Checker.Certified
    (fst (Checker.audit ~engine:Solver.Tree_eval ~network ~system (artifact ())))

let test_audit_rejects_tampered_coeff () =
  let a = artifact () in
  let coeffs = Array.copy a.Artifact.coeffs in
  (* Scaling a diagonal coefficient up keeps the form positive definite
     (so the structural check passes) but lifts W above the level on X0. *)
  coeffs.(0) <- coeffs.(0) *. 10.0;
  match audit { a with Artifact.coeffs } with
  | Checker.Rejected (Checker.Condition_refuted _) -> ()
  | v -> Alcotest.failf "tampered coeff: expected refutation, got %s" (Checker.string_of_verdict v)

let test_audit_rejects_indefinite_form () =
  let a = artifact () in
  let coeffs = Array.copy a.Artifact.coeffs in
  coeffs.(0) <- -.coeffs.(0);
  match audit { a with Artifact.coeffs } with
  | Checker.Rejected (Checker.Ill_formed _) -> ()
  | v -> Alcotest.failf "indefinite form: expected Ill_formed, got %s" (Checker.string_of_verdict v)

let test_audit_rejects_inflated_level () =
  let a = artifact () in
  match audit { a with Artifact.level = a.Artifact.level *. 100.0 } with
  | Checker.Rejected (Checker.Condition_refuted { condition = 7; _ }) -> ()
  | v ->
    Alcotest.failf "inflated level: expected condition-7 refutation, got %s"
      (Checker.string_of_verdict v)

let test_audit_rejects_wrong_fingerprint () =
  let a = artifact () in
  let fp = { a.Artifact.fingerprint with Artifact.dynamics_hash = "0000" } in
  (match audit { a with Artifact.fingerprint = fp } with
  | Checker.Rejected (Checker.Fingerprint_mismatch { field = "dynamics"; _ }) -> ()
  | v ->
    Alcotest.failf "wrong dynamics hash: expected mismatch, got %s"
      (Checker.string_of_verdict v));
  (* The artifact binds a specific controller: auditing against a different
     one must fail the nn-hash comparison. *)
  match audit ~network:(Case_study.controller_of_width 12) a with
  | Checker.Rejected (Checker.Fingerprint_mismatch { field = "network"; _ }) -> ()
  | v ->
    Alcotest.failf "wrong network: expected nn mismatch, got %s" (Checker.string_of_verdict v)

let test_audit_rejects_arity_mismatch () =
  let a = artifact () in
  match audit { a with Artifact.coeffs = [| 1.0 |] } with
  | Checker.Rejected (Checker.Ill_formed _) -> ()
  | v -> Alcotest.failf "arity mismatch: expected Ill_formed, got %s" (Checker.string_of_verdict v)

(* A negative recorded gamma turns condition (5)'s Unsat into a vacuous
   bound (lie < |gamma|), so the checker must refuse it structurally
   rather than "re-prove" a non-theorem. *)
let test_audit_rejects_negative_gamma () =
  let a = artifact () in
  (match audit ~network { a with Artifact.gamma = -.Float.abs a.Artifact.gamma -. 1.0 } with
  | Checker.Rejected (Checker.Ill_formed _) -> ()
  | v -> Alcotest.failf "negative gamma: expected Ill_formed, got %s" (Checker.string_of_verdict v));
  match audit ~network { a with Artifact.gamma = Float.nan } with
  | Checker.Rejected (Checker.Ill_formed _) -> ()
  | v -> Alcotest.failf "NaN gamma: expected Ill_formed, got %s" (Checker.string_of_verdict v)

let test_audit_rejects_nonpositive_delta () =
  let a = artifact () in
  List.iter
    (fun delta ->
      match audit ~network { a with Artifact.delta } with
      | Checker.Rejected (Checker.Ill_formed _) -> ()
      | v ->
        Alcotest.failf "delta %h: expected Ill_formed, got %s" delta
          (Checker.string_of_verdict v))
    [ 0.0; -1e-3; Float.infinity ]

(* --- warm start ------------------------------------------------------- *)

let test_warm_start_skips_lp () =
  let cert = Lazy.force proved in
  let report =
    Engine.verify ~config ~warm_start:cert.Engine.coeffs ~rng:(Rng.create 99) system
  in
  (match report.Engine.outcome with
  | Engine.Proved _ -> ()
  | Engine.Failed _ -> Alcotest.fail "warm start failed to prove");
  Alcotest.(check int) "LP skipped" 0 report.Engine.stats.Engine.lp_calls

let test_warm_start_bad_arity_ignored () =
  let report = Engine.verify ~config ~warm_start:[| 1.0 |] ~rng:(Rng.create 7) system in
  (match report.Engine.outcome with
  | Engine.Proved _ -> ()
  | Engine.Failed _ -> Alcotest.fail "verify with ignored warm start failed");
  Alcotest.(check bool) "LP ran" true (report.Engine.stats.Engine.lp_calls > 0)

(* --- cache ------------------------------------------------------------ *)

let test_cache_cold_then_hit () =
  let root = fresh_store () in
  let first = Cache.verify ~config ~network ~store:root ~rng:(Rng.create 7) system in
  (match first.Cache.source with
  | Cache.Cold -> ()
  | s -> Alcotest.failf "first run should be cold, got %s" (Cache.string_of_source s));
  Alcotest.(check bool) "first run exported" true (first.Cache.exported <> None);
  let second = Cache.verify ~config ~network ~store:root ~rng:(Rng.create 8) system in
  (match second.Cache.source with
  | Cache.Cache_hit { fingerprint; _ } ->
    Alcotest.(check string) "hit fingerprint" first.Cache.fingerprint.Artifact.combined
      fingerprint
  | s -> Alcotest.failf "second run should hit, got %s" (Cache.string_of_source s));
  Alcotest.(check bool) "hit not re-exported" true (second.Cache.exported = None);
  Alcotest.(check int) "hit runs no LP" 0 second.Cache.report.Engine.stats.Engine.lp_calls;
  (* use_cache:false forces a cold run but still exports. *)
  let forced =
    Cache.verify ~config ~use_cache:false ~network ~store:root ~rng:(Rng.create 9) system
  in
  match forced.Cache.source with
  | Cache.Cold -> ()
  | s -> Alcotest.failf "no-cache run should be cold, got %s" (Cache.string_of_source s)

let test_cache_warm_start_nearby () =
  let root = fresh_store () in
  let _ = Cache.verify ~config ~network ~store:root ~rng:(Rng.create 7) system in
  let other = Case_study.controller_of_width 12 in
  let second =
    Cache.verify ~config ~network:other ~store:root ~rng:(Rng.create 7)
      (Case_study.system_of_network other)
  in
  match second.Cache.source with
  | Cache.Warm_started { donor } ->
    Alcotest.(check bool) "donor is the stored entry" true (Store.list ~root |> List.mem donor);
    Alcotest.(check int) "warm start skipped the LP" 0
      second.Cache.report.Engine.stats.Engine.lp_calls
  | s -> Alcotest.failf "expected warm start, got %s" (Cache.string_of_source s)

let test_cache_rejects_tampered_hit () =
  let root = fresh_store () in
  let first = Cache.verify ~config ~network ~store:root ~rng:(Rng.create 7) system in
  let dir = Option.get first.Cache.exported in
  (* Rewrite the stored artifact with an inflated level (and a fresh
     checksum, so only the audit can catch it). *)
  let a = artifact () in
  let tampered = { a with Artifact.level = a.Artifact.level *. 100.0 } in
  let oc = open_out (Filename.concat dir Store.cert_file) in
  output_string oc (Artifact.to_string tampered);
  close_out oc;
  let second = Cache.verify ~config ~network ~store:root ~rng:(Rng.create 8) system in
  (match second.Cache.source with
  | Cache.Cache_hit _ -> Alcotest.fail "tampered entry must not be served as a hit"
  | Cache.Cold | Cache.Warm_started _ -> ());
  match second.Cache.report.Engine.outcome with
  | Engine.Proved _ -> ()
  | Engine.Failed _ -> Alcotest.fail "fallback run after rejected hit failed"

(* Semantic tampering with a valid checksum: the audit re-proves the
   conditions against the problem the artifact itself records, so an
   artifact rewritten for a weaker problem (shrunken rectangles, negated
   gamma) audits clean against *its own* problem.  The cache must bind the
   artifact to the live config and refuse the hit. *)
let test_cache_rejects_tampered_problem_fields () =
  let a = artifact () in
  let shrink rect = Array.map (fun (lo, hi) -> (lo /. 2.0, hi /. 2.0)) rect in
  List.iter
    (fun (name, tampered) ->
      let root = fresh_store () in
      (* The fingerprint field is untouched, so Store.save plants the
         tampered artifact exactly at the live problem's lookup address. *)
      let _dir = Store.save ~root ~network tampered in
      let result = Cache.verify ~config ~network ~store:root ~rng:(Rng.create 8) system in
      match result.Cache.source with
      | Cache.Cache_hit _ -> Alcotest.failf "%s must not be served as a hit" name
      | Cache.Cold | Cache.Warm_started _ -> ())
    [
      ("shrunken safe_rect", { a with Artifact.safe_rect = shrink a.Artifact.safe_rect });
      ("shrunken x0_rect", { a with Artifact.x0_rect = shrink a.Artifact.x0_rect });
      ("negated gamma", { a with Artifact.gamma = -.a.Artifact.gamma -. 1.0 });
      ("zeroed delta", { a with Artifact.delta = 0.0 });
    ]

(* --- cross-plant isolation -------------------------------------------- *)

(* A certificate proved under one plant must never be served — as an exact
   hit or a warm-start donor — for a different plant sharing the same
   store.  Two registry plants with bundled controllers exercise the
   plant_hash component of the fingerprint end to end. *)
let cache_run ?plant_params name ~store ~seed =
  let plant = Option.get (Registry.find_plant name) in
  let closed =
    Plant.close_exn ?params:plant_params plant plant.Plant.default_controller
  in
  let config = Plant.default_engine_config plant in
  Cache.verify ~config ?network:closed.Plant.network ~plant:closed.Plant.id ~store
    ~rng:(Rng.create seed) closed.Plant.system

let assert_cold name (r : Cache.result) =
  (match r.Cache.source with
  | Cache.Cold -> ()
  | s -> Alcotest.failf "%s: expected a cold run, got %s" name (Cache.string_of_source s));
  match r.Cache.report.Engine.outcome with
  | Engine.Proved _ -> Alcotest.(check bool) (name ^ " exported") true (r.Cache.exported <> None)
  | Engine.Failed _ -> Alcotest.failf "%s: cold run failed to prove" name

let test_cache_cross_plant_isolation () =
  let root = fresh_store () in
  assert_cold "duffing" (cache_run "duffing" ~store:root ~seed:7);
  (* Same store, different plant: must neither hit nor warm-start. *)
  assert_cold "poly_2d" (cache_run "poly_2d" ~store:root ~seed:7);
  (* Sanity: each plant still hits its own entry. *)
  List.iter
    (fun name ->
      match (cache_run name ~store:root ~seed:8).Cache.source with
      | Cache.Cache_hit _ -> ()
      | s -> Alcotest.failf "%s: expected own-entry hit, got %s" name (Cache.string_of_source s))
    [ "duffing"; "poly_2d" ]

(* Two parameterizations of the same plant share every config component
   (rectangles, gamma, template) yet must stay isolated: plant_hash alone
   keeps them apart. *)
let test_cache_parameterization_isolation () =
  let root = fresh_store () in
  assert_cold "duffing default damping" (cache_run "duffing" ~store:root ~seed:7);
  assert_cold "duffing damping=0.6"
    (cache_run "duffing" ~plant_params:[ ("damping", 0.6) ] ~store:root ~seed:7);
  match
    (cache_run "duffing" ~plant_params:[ ("damping", 0.6) ] ~store:root ~seed:8).Cache.source
  with
  | Cache.Cache_hit _ -> ()
  | s -> Alcotest.failf "reparameterized rerun should hit its own entry, got %s"
           (Cache.string_of_source s)

(* --- golden SMT-LIB dumps --------------------------------------------- *)

(* The queries [dump_smt2] writes are the external-audit interface (dReal
   scripts); their exact text is part of the artifact contract, so any
   change must be a conscious golden-file update. *)
let test_dump_smt2_golden () =
  let net = Case_study.reference_controller in
  let sys = Case_study.system_of_network net in
  let template = Template.make Template.Quadratic sys.Engine.vars in
  let cert = { Engine.template; coeffs = [| 1.0; 0.5; 2.0 |]; level = 1.0 } in
  let dir = Filename.concat temp_root "smt2" in
  let rec ensure d =
    if not (Sys.file_exists d) then begin
      ensure (Filename.dirname d);
      Sys.mkdir d 0o755
    end
  in
  ensure dir;
  let written = Engine.dump_smt2 sys cert ~dir in
  Alcotest.(check int) "three queries" 3 (List.length written);
  List.iter
    (fun path ->
      let golden = Filename.concat "golden" (Filename.basename path) in
      let read p =
        let ic = open_in_bin p in
        let s = really_input_string ic (in_channel_length ic) in
        close_in ic;
        s
      in
      Alcotest.(check string) (Filename.basename path) (read golden) (read path))
    written

(* --- store fsck -------------------------------------------------------- *)

let write_raw path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let issue_name = function
  | Store.Corrupt_entry _ -> "corrupt"
  | Store.Address_mismatch _ -> "address"
  | Store.Missing_network -> "missing-network"
  | Store.Network_mismatch _ -> "network-mismatch"
  | Store.Fingerprint_mismatch { field; _ } -> "fingerprint-" ^ field

(* A second artifact with a distinct fingerprint (different gamma), so a
   store can hold a healthy entry next to the corrupted ones. *)
let other_artifact () =
  let config2 = { config with Engine.gamma = config.Engine.gamma *. 2.0 } in
  let fp = Artifact.fingerprint ~network system config2 in
  Artifact.make ~fingerprint:fp ~config:config2 ~stats:[ ("source", "test") ]
    (Lazy.force proved)

(* Plant every corruption fsck knows about in one store and assert each is
   quarantined — invisible to list/load afterwards — while the healthy
   entry survives untouched. *)
let test_fsck_quarantines_each_corruption () =
  let root = fresh_store () in
  let a = artifact () in
  let entry_dir = Store.save ~root ~network a in
  let healthy = other_artifact () in
  let healthy_fp = healthy.Artifact.fingerprint.Artifact.combined in
  ignore (Store.save ~root ~network:(Case_study.controller_of_width 10) healthy);
  let plant name f =
    let d = Filename.concat root name in
    Sys.mkdir d 0o755;
    f d
  in
  (* bad checksum: one flipped byte *)
  plant "00badsum" (fun d ->
      let b = Bytes.of_string (Artifact.to_string a) in
      Bytes.set b 0 (if Bytes.get b 0 = 'v' then 'V' else 'v');
      write_raw (Filename.concat d Store.cert_file) (Bytes.to_string b));
  (* unparseable artifact *)
  plant "01garbage" (fun d ->
      write_raw (Filename.concat d Store.cert_file) "not an artifact\n");
  (* valid artifact stored under the wrong content address *)
  plant "02wrongaddr" (fun d ->
      write_raw (Filename.concat d Store.cert_file) (Artifact.to_string a);
      write_raw (Filename.concat d Store.network_file) (Nn.to_string network));
  (* the real entry, with its recorded network.nn deleted *)
  Sys.remove (Filename.concat entry_dir Store.network_file);
  let report = Store.fsck ~quarantine:true ~root () in
  Alcotest.(check int) "scanned" 5 report.Store.scanned;
  Alcotest.(check int) "healthy" 1 report.Store.healthy;
  let findings =
    List.map
      (fun f -> (f.Store.fingerprint, issue_name f.Store.issue))
      report.Store.findings
  in
  Alcotest.(check (list (pair string string)))
    "each corruption classified"
    [
      ("00badsum", "corrupt");
      ("01garbage", "corrupt");
      ("02wrongaddr", "address");
      (a.Artifact.fingerprint.Artifact.combined, "missing-network");
    ]
    (List.sort compare findings);
  List.iter
    (fun f ->
      match f.Store.quarantined_to with
      | Some dest ->
        Alcotest.(check bool) ("moved " ^ f.Store.fingerprint) true (Sys.file_exists dest)
      | None -> Alcotest.fail ("not quarantined: " ^ f.Store.fingerprint))
    report.Store.findings;
  (* Quarantined entries are invisible to every lookup path. *)
  Alcotest.(check (list string)) "only the healthy entry listed" [ healthy_fp ]
    (Store.list ~root);
  (match Store.load ~root a.Artifact.fingerprint.Artifact.combined with
  | Error Store.Missing -> ()
  | _ -> Alcotest.fail "quarantined entry still loadable");
  (* A second scan over the cleaned store is quiet. *)
  let again = Store.fsck ~quarantine:true ~root () in
  Alcotest.(check int) "clean rescan" 0 (List.length again.Store.findings)

let test_fsck_network_mismatch () =
  let root = fresh_store () in
  let a = artifact () in
  let dir = Store.save ~root ~network a in
  (* Swap in a parseable but different controller. *)
  write_raw (Filename.concat dir Store.network_file)
    (Nn.to_string (Case_study.controller_of_width 12));
  let report = Store.fsck ~quarantine:true ~root () in
  (match report.Store.findings with
  | [ { Store.issue = Store.Network_mismatch _; _ } ] -> ()
  | fs ->
    Alcotest.failf "expected one network-mismatch finding, got %s"
      (String.concat "," (List.map (fun f -> issue_name f.Store.issue) fs)));
  Alcotest.(check (list string)) "entry quarantined" [] (Store.list ~root)

(* Without ~quarantine fsck only reports: nothing moves, lookups still see
   the (bad) entry — the CLI's dry-run mode. *)
let test_fsck_report_only_leaves_store_untouched () =
  let root = fresh_store () in
  let a = artifact () in
  let dir = Store.save ~root ~network a in
  Sys.remove (Filename.concat dir Store.network_file);
  let report = Store.fsck ~root () in
  (match report.Store.findings with
  | [ { Store.quarantined_to = None; issue = Store.Missing_network; _ } ] -> ()
  | _ -> Alcotest.fail "expected one unquarantined missing-network finding");
  Alcotest.(check (list string)) "entry still listed"
    [ a.Artifact.fingerprint.Artifact.combined ]
    (Store.list ~root)

(* Temp-file + rename atomicity: a Store.save racing the scan — even of the
   very fingerprint being examined — must never be flagged, and stray
   in-progress temp files are invisible. *)
let test_fsck_ignores_concurrent_save () =
  let root = fresh_store () in
  let a = artifact () in
  let dir = Store.save ~root ~network a in
  (* A writer that died mid-save leaves a temp file behind. *)
  write_raw (Filename.concat dir "cert1a2b3c.tmp") "half-written";
  let resaved = ref false in
  let on_entry fp =
    if String.equal fp a.Artifact.fingerprint.Artifact.combined then begin
      (* Overwrite the entry mid-scan with a byte-different but valid
         artifact (fresh stats) at the same address. *)
      let a' =
        Artifact.make ~fingerprint:a.Artifact.fingerprint ~config
          ~stats:[ ("source", "rewrite") ] (Lazy.force proved)
      in
      ignore (Store.save ~root ~network a');
      resaved := true
    end
  in
  let report = Store.fsck ~quarantine:true ~on_entry ~root () in
  Alcotest.(check bool) "save raced the scan" true !resaved;
  Alcotest.(check int) "nothing flagged" 0 (List.length report.Store.findings);
  Alcotest.(check int) "entry healthy" 1 report.Store.healthy

(* An artifact whose plant identity line was rewritten (checksum refreshed,
   fingerprint untouched) is internally inconsistent: plant-hash no longer
   digests the plant line.  fsck must classify it as a plant fingerprint
   mismatch and quarantine it. *)
let test_fsck_flags_plant_tamper () =
  let root = fresh_store () in
  let a = artifact () in
  let tampered =
    {
      a with
      Artifact.plant =
        Artifact.plant_id ~name:"dubins_error" ~version:"1.0.0"
          ~params:[ ("v", 2.0); ("theta_r", 0.0) ];
    }
  in
  ignore (Store.save ~root ~network tampered);
  let report = Store.fsck ~quarantine:true ~root () in
  (match report.Store.findings with
  | [ { Store.issue = Store.Fingerprint_mismatch { field = "plant"; _ }; _ } ] -> ()
  | fs ->
    Alcotest.failf "expected one plant fingerprint-mismatch finding, got [%s]"
      (String.concat "," (List.map (fun f -> issue_name f.Store.issue) fs)));
  Alcotest.(check (list string)) "tampered entry quarantined" [] (Store.list ~root)

let () =
  Alcotest.run "cert"
    [
      ( "artifact",
        [
          Alcotest.test_case "round-trip is bit-exact" `Quick test_roundtrip;
          Alcotest.test_case "checksum rejects corruption" `Quick test_checksum_rejects_corruption;
          Alcotest.test_case "truncation rejected" `Quick test_truncation_rejected;
          Alcotest.test_case "poly round-trip" `Quick test_poly_roundtrip;
          Alcotest.test_case "poly artifact certified" `Quick test_poly_audit_certifies;
          Alcotest.test_case "fingerprint sensitivity" `Quick test_fingerprint_sensitivity;
          Alcotest.test_case "fingerprint ignores execution strategy" `Quick
            test_fingerprint_ignores_execution_strategy;
        ] );
      ( "store",
        [
          Alcotest.test_case "save/load/list round-trip" `Quick test_store_roundtrip;
          Alcotest.test_case "corruption detected on load" `Quick test_store_detects_corruption;
        ] );
      ( "checker",
        [
          Alcotest.test_case "genuine artifact certified" `Quick test_audit_certifies_genuine;
          Alcotest.test_case "tampered coeff refuted" `Quick test_audit_rejects_tampered_coeff;
          Alcotest.test_case "indefinite form ill-formed" `Quick test_audit_rejects_indefinite_form;
          Alcotest.test_case "inflated level refuted (cond 7)" `Quick
            test_audit_rejects_inflated_level;
          Alcotest.test_case "fingerprint mismatch rejected" `Quick
            test_audit_rejects_wrong_fingerprint;
          Alcotest.test_case "arity mismatch ill-formed" `Quick test_audit_rejects_arity_mismatch;
          Alcotest.test_case "negative gamma ill-formed" `Quick test_audit_rejects_negative_gamma;
          Alcotest.test_case "nonpositive delta ill-formed" `Quick
            test_audit_rejects_nonpositive_delta;
        ] );
      ( "warm-start",
        [
          Alcotest.test_case "stored coeffs skip the LP" `Quick test_warm_start_skips_lp;
          Alcotest.test_case "bad arity ignored" `Quick test_warm_start_bad_arity_ignored;
        ] );
      ( "cache",
        [
          Alcotest.test_case "cold then hit" `Quick test_cache_cold_then_hit;
          Alcotest.test_case "nearby entry warm-starts" `Quick test_cache_warm_start_nearby;
          Alcotest.test_case "tampered hit falls back to a real run" `Quick
            test_cache_rejects_tampered_hit;
          Alcotest.test_case "tampered problem fields never hit" `Quick
            test_cache_rejects_tampered_problem_fields;
          Alcotest.test_case "cross-plant isolation" `Quick test_cache_cross_plant_isolation;
          Alcotest.test_case "parameterization isolation" `Quick
            test_cache_parameterization_isolation;
        ] );
      ( "fsck",
        [
          Alcotest.test_case "each corruption quarantined" `Quick
            test_fsck_quarantines_each_corruption;
          Alcotest.test_case "network mismatch quarantined" `Quick test_fsck_network_mismatch;
          Alcotest.test_case "report-only leaves store untouched" `Quick
            test_fsck_report_only_leaves_store_untouched;
          Alcotest.test_case "concurrent save not flagged" `Quick
            test_fsck_ignores_concurrent_save;
          Alcotest.test_case "plant tamper flagged" `Quick test_fsck_flags_plant_tamper;
        ] );
      ("golden", [ Alcotest.test_case "dump_smt2 snapshot" `Quick test_dump_smt2_golden ]);
    ]
