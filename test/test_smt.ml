(* Tests for the δ-SAT solver stack: boxes, formulas/DNF, HC4 contraction
   soundness, and end-to-end satisfiability verdicts. *)

let x = Expr.var "x"

let y = Expr.var "y"

let solve ?options bounds f = fst (Solver.solve ?options ~bounds f)

let expect_unsat name v =
  match v with
  | Solver.Unsat -> ()
  | Solver.Delta_sat w ->
    Alcotest.failf "%s: expected unsat, got witness %s" name
      (String.concat ", " (List.map (fun (n, v) -> Printf.sprintf "%s=%g" n v) w))
  | Solver.Unknown -> Alcotest.failf "%s: expected unsat, got unknown" name

let expect_sat name v =
  match v with
  | Solver.Delta_sat w -> w
  | Solver.Unsat -> Alcotest.failf "%s: expected sat, got unsat" name
  | Solver.Unknown -> Alcotest.failf "%s: expected sat, got unknown" name

(* --- Box --------------------------------------------------------------- *)

let test_box_basics () =
  let b = Box.of_list [ ("x", Interval.make 0.0 2.0); ("y", Interval.make (-1.0) 3.0) ] in
  Alcotest.(check int) "dim" 2 (Box.dim b);
  Alcotest.(check bool) "get" true (Interval.equal (Box.get b "y") (Interval.make (-1.0) 3.0));
  Alcotest.(check int) "widest" 1 (Box.widest_var b);
  Alcotest.(check (float 1e-12)) "max width" 4.0 (Box.max_width b);
  Alcotest.(check (float 1e-12)) "total width" 6.0 (Box.total_width b);
  let l, r = Box.split b 1 in
  Alcotest.(check (float 1e-12)) "left hi" 1.0 (Interval.hi (Box.get l "y"));
  Alcotest.(check (float 1e-12)) "right lo" 1.0 (Interval.lo (Box.get r "y"));
  Alcotest.(check bool) "contains mid" true (Box.contains b (Box.midpoint b));
  Alcotest.(check bool) "not empty" false (Box.is_empty b);
  let e = Box.set_idx b 0 Interval.empty in
  Alcotest.(check bool) "empty detected" true (Box.is_empty e)

let test_box_duplicate () =
  Alcotest.check_raises "duplicate" (Invalid_argument "Box.of_list: duplicate variable")
    (fun () -> ignore (Box.of_list [ ("x", Interval.entire); ("x", Interval.entire) ]))

(* --- Formula ----------------------------------------------------------- *)

let test_formula_eval () =
  let f = Formula.and_ [ Formula.le x (Expr.const 1.0); Formula.gt y (Expr.const 0.0) ] in
  Alcotest.(check bool) "sat point" true (Formula.eval [ ("x", 0.5); ("y", 0.5) ] f);
  Alcotest.(check bool) "unsat point" false (Formula.eval [ ("x", 2.0); ("y", 0.5) ] f);
  let nf = Formula.not_ f in
  Alcotest.(check bool) "negation flips" true (Formula.eval [ ("x", 2.0); ("y", 0.5) ] nf)

let test_formula_simplification () =
  Alcotest.(check bool) "and [] = true" true (Formula.and_ [] = Formula.True);
  Alcotest.(check bool) "or [] = false" true (Formula.or_ [] = Formula.False);
  Alcotest.(check bool) "and false" true (Formula.and_ [ Formula.False; Formula.True ] = Formula.False);
  Alcotest.(check bool) "or true" true (Formula.or_ [ Formula.False; Formula.True ] = Formula.True);
  Alcotest.(check bool) "not not" true (Formula.not_ (Formula.not_ Formula.True) = Formula.True)

let test_dnf () =
  (* (a or b) and c -> [a;c], [b;c] *)
  let a = Formula.le x (Expr.const 0.0)
  and b = Formula.le y (Expr.const 0.0)
  and c = Formula.le (Expr.( + ) x y) (Expr.const 1.0) in
  let dnf = Formula.to_dnf (Formula.and_ [ Formula.or_ [ a; b ]; c ]) in
  Alcotest.(check int) "two disjuncts" 2 (List.length dnf);
  List.iter (fun conj -> Alcotest.(check int) "two atoms each" 2 (List.length conj)) dnf;
  Alcotest.(check int) "true" 1 (List.length (Formula.to_dnf Formula.True));
  Alcotest.(check int) "false" 0 (List.length (Formula.to_dnf Formula.False))

let test_dnf_negation () =
  (* not (x <= 0 and y <= 0) = x > 0 or y > 0: two disjuncts. *)
  let f =
    Formula.not_ (Formula.and_ [ Formula.le x (Expr.const 0.0); Formula.le y (Expr.const 0.0) ])
  in
  Alcotest.(check int) "two disjuncts" 2 (List.length (Formula.to_dnf f))

let test_free_vars () =
  let f = Formula.and_ [ Formula.le x y; Formula.le y (Expr.const 1.0) ] in
  Alcotest.(check (list string)) "vars" [ "x"; "y" ] (Formula.free_vars f)

let test_holds_delta () =
  let f = Formula.le x (Expr.const 0.0) in
  Alcotest.(check bool) "slack accepted" true (Formula.holds_delta 0.01 [ ("x", 0.005) ] f);
  Alcotest.(check bool) "beyond slack" false (Formula.holds_delta 0.01 [ ("x", 0.02) ] f)

(* --- HC4 --------------------------------------------------------------- *)

let compile_atom bounds_vars atom =
  let index_of v =
    let rec find i = function
      | [] -> raise Not_found
      | n :: _ when String.equal n v -> i
      | _ :: tl -> find (i + 1) tl
    in
    find 0 bounds_vars
  in
  Hc4.compile ~index_of atom

let atom_of f =
  match f with Formula.Atom a -> a | _ -> Alcotest.fail "expected atom"

let test_hc4_linear_contraction () =
  (* x + y <= 0 with x in [2, 10]: y must be <= -2. *)
  let c = compile_atom [ "x"; "y" ] (atom_of (Formula.le (Expr.( + ) x y) (Expr.const 0.0))) in
  let domains = [| Interval.make 2.0 10.0; Interval.make (-100.0) 100.0 |] in
  let changed = Hc4.revise domains c in
  Alcotest.(check bool) "changed" true changed;
  Alcotest.(check bool) "y upper contracted" true (Interval.hi domains.(1) <= -2.0 +. 1e-9);
  Alcotest.(check bool) "x untouched lower" true (Interval.lo domains.(0) = 2.0)

let test_hc4_empty () =
  (* x^2 <= -1 is infeasible. *)
  let c =
    compile_atom [ "x" ]
      (atom_of (Formula.le (Expr.( + ) (Expr.pow x 2) (Expr.const 1.0)) (Expr.const 0.0)))
  in
  let domains = [| Interval.make (-5.0) 5.0 |] in
  Alcotest.check_raises "empty" Hc4.Empty_box (fun () -> ignore (Hc4.revise domains c))

let test_hc4_tanh_inversion () =
  (* tanh(x) = 0.5 -> x = atanh(0.5) ~ 0.5493. *)
  let c = compile_atom [ "x" ] (atom_of (Formula.eq (Expr.tanh x) (Expr.const 0.5))) in
  let domains = [| Interval.make (-10.0) 10.0 |] in
  let rec fix n = if n > 0 && (try Hc4.revise domains c with Hc4.Empty_box -> false) then fix (n - 1) in
  fix 20;
  Alcotest.(check bool) "x contracted near atanh(0.5)" true
    (Interval.lo domains.(0) > 0.54 && Interval.hi domains.(0) < 0.56)

let test_hc4_certainly_true () =
  let c = compile_atom [ "x" ] (atom_of (Formula.le (Expr.pow x 2) (Expr.const 100.0))) in
  let domains = [| Interval.make (-2.0) 2.0 |] in
  Alcotest.(check bool) "whole box satisfies" true (Hc4.certainly_true domains c);
  let c2 = compile_atom [ "x" ] (atom_of (Formula.le (Expr.pow x 2) (Expr.const 1.0))) in
  Alcotest.(check bool) "not certain" false (Hc4.certainly_true domains c2)

let test_hc4_change_reporting () =
  (* revise's change report is a dirty flag set at the domain write sites;
     it must be true exactly when a domain narrowed.  A second pass from
     the fixpoint must report no change (the pre-flag implementation
     rescanned a copied array — keep its semantics). *)
  let c = compile_atom [ "x"; "y" ] (atom_of (Formula.le (Expr.( + ) x y) (Expr.const 0.0))) in
  let domains = [| Interval.make 2.0 10.0; Interval.make (-100.0) 100.0 |] in
  Alcotest.(check bool) "first pass narrows" true (Hc4.revise domains c);
  Alcotest.(check bool) "fixpoint reports no change" false (Hc4.revise domains c);
  (* A constraint already slack on the whole box never reports a change. *)
  let slack = compile_atom [ "x"; "y" ] (atom_of (Formula.le x (Expr.const 50.0))) in
  Alcotest.(check bool) "slack constraint no change" false (Hc4.revise domains slack)

let prop_hc4_sound =
  (* HC4 never removes points that satisfy the constraint. *)
  QCheck.Test.make ~name:"HC4 contraction keeps all solutions" ~count:300
    QCheck.(pair (int_range 0 100_000) (pair (float_range (-3.0) 3.0) (float_range (-3.0) 3.0)))
    (fun (seed, (px, py)) ->
      let rng = Rng.create seed in
      let rec gen depth =
        if depth = 0 then begin
          match Rng.int rng 3 with
          | 0 -> Expr.var "x"
          | 1 -> Expr.var "y"
          | _ -> Expr.const (Rng.uniform rng (-2.0) 2.0)
        end
        else begin
          match Rng.int rng 8 with
          | 0 -> Expr.( + ) (gen (depth - 1)) (gen (depth - 1))
          | 1 -> Expr.( - ) (gen (depth - 1)) (gen (depth - 1))
          | 2 -> Expr.( * ) (gen (depth - 1)) (gen (depth - 1))
          | 3 -> Expr.sin (gen (depth - 1))
          | 4 -> Expr.tanh (gen (depth - 1))
          | 5 -> Expr.pow (gen (depth - 1)) 2
          | 6 -> Expr.abs (gen (depth - 1))
          | _ -> Expr.neg (gen (depth - 1))
        end
      in
      let e = gen 3 in
      let value = Expr.eval_env [ ("x", px); ("y", py) ] e in
      if not (Float.is_finite value) then true
      else begin
        (* Build a constraint satisfied at (px, py): e <= value (+1). *)
        let atom = atom_of (Formula.le e (Expr.const (value +. 1.0))) in
        let c = compile_atom [ "x"; "y" ] atom in
        let domains = [| Interval.make (-3.0) 3.0; Interval.make (-3.0) 3.0 |] in
        match Hc4.revise domains c with
        | _ -> Interval.mem px domains.(0) && Interval.mem py domains.(1)
        | exception Hc4.Empty_box -> false
      end)

(* --- Solver ------------------------------------------------------------ *)

let bounds2 = [ ("x", -2.0, 2.0); ("y", -2.0, 2.0) ]

let test_solver_circle_unsat () =
  let f =
    Formula.and_
      [
        Formula.le (Expr.( + ) (Expr.pow x 2) (Expr.pow y 2)) (Expr.const 1.0);
        Formula.ge (Expr.( + ) x y) (Expr.const 1.6);
      ]
  in
  expect_unsat "circle" (solve bounds2 f)

let test_solver_circle_sat () =
  let f =
    Formula.and_
      [
        Formula.le (Expr.( + ) (Expr.pow x 2) (Expr.pow y 2)) (Expr.const 1.0);
        Formula.ge (Expr.( + ) x y) (Expr.const 1.3);
      ]
  in
  let w = expect_sat "circle sat" (solve bounds2 f) in
  (* The witness satisfies the δ-weakened formula. *)
  Alcotest.(check bool) "witness delta-holds" true (Formula.holds_delta 1e-2 w f)

let test_solver_trig_root () =
  let f = Formula.eq (Expr.sin x) (Expr.const 0.5) in
  let w = expect_sat "sin root" (solve [ ("x", 0.0, 1.5707) ] f) in
  let xv = List.assoc "x" w in
  Alcotest.(check bool) "near asin(0.5)" true (Float.abs (xv -. Float.asin 0.5) < 1e-2)

let test_solver_tanh_bound () =
  expect_unsat "tanh > 1.01"
    (solve [ ("x", -100.0, 100.0) ] (Formula.gt (Expr.tanh x) (Expr.const 1.01)))

let test_solver_disjunction () =
  (* (x <= -1.5 or x >= 1.5) and x^2 <= 1: unsat. *)
  let f =
    Formula.and_
      [
        Formula.or_ [ Formula.le x (Expr.const (-1.5)); Formula.ge x (Expr.const 1.5) ];
        Formula.le (Expr.pow x 2) (Expr.const 1.0);
      ]
  in
  expect_unsat "disjunct" (solve [ ("x", -2.0, 2.0) ] f);
  (* Loosen the circle: sat through the second disjunct. *)
  let f2 =
    Formula.and_
      [
        Formula.or_ [ Formula.le x (Expr.const (-1.5)); Formula.ge x (Expr.const 1.5) ];
        Formula.le (Expr.pow x 2) (Expr.const 4.0);
      ]
  in
  ignore (expect_sat "disjunct sat" (solve [ ("x", -2.0, 2.0) ] f2))

let test_solver_rect_helpers () =
  let outside = Formula.outside_rect [ ("x", -1.0, 1.0); ("y", -1.0, 1.0) ] in
  (* Outside the unit square but inside [-0.5, 0.5]^2: unsat. *)
  expect_unsat "outside small box"
    (solve [ ("x", -0.5, 0.5); ("y", -0.5, 0.5) ] outside);
  let w = expect_sat "outside reachable" (solve bounds2 outside) in
  let xv = List.assoc "x" w and yv = List.assoc "y" w in
  Alcotest.(check bool) "witness outside" true
    (Float.abs xv > 1.0 -. 1e-2 || Float.abs yv > 1.0 -. 1e-2);
  let inside = Formula.in_rect [ ("x", -1.0, 1.0) ] in
  ignore (expect_sat "inside" (solve [ ("x", -2.0, 2.0) ] inside))

let test_solver_unknown_budget () =
  (* A hard equality with a tiny branch budget must return Unknown, not a
     wrong verdict. *)
  let opts = { Solver.default_options with Solver.max_branches = 3; delta = 1e-12 } in
  let f = Formula.eq (Expr.( + ) (Expr.sin x) (Expr.( * ) x (Expr.cos y))) (Expr.const 0.37) in
  match solve ~options:opts bounds2 f with
  | Solver.Unknown -> ()
  | Solver.Unsat -> Alcotest.fail "tiny budget should not conclude unsat"
  | Solver.Delta_sat _ -> () (* may legitimately find a witness quickly *)

(* A formula hard enough that the solver cannot finish instantly: used to
   exercise deadline and cancellation stops. *)
let hard_formula =
  Formula.eq (Expr.( + ) (Expr.sin x) (Expr.( * ) x (Expr.cos y))) (Expr.const 0.37)

let test_solver_deadline_stop () =
  (* An already-expired deadline must stop the very first box and be
     reported in the stats; the verdict degrades to Unknown, never to a
     wrong Unsat. *)
  let opts = { Solver.default_options with Solver.delta = 1e-12 } in
  let budget = Budget.make ~timeout:0.0 () in
  let verdict, st = Solver.solve ~options:opts ~budget ~bounds:bounds2 hard_formula in
  (match verdict with
  | Solver.Unknown -> ()
  | Solver.Unsat -> Alcotest.fail "expired deadline must not conclude unsat"
  | Solver.Delta_sat _ -> Alcotest.fail "expired deadline must not search for a witness");
  (match st.Solver.interrupted with
  | Some Budget.Deadline -> ()
  | Some s -> Alcotest.failf "wrong stop: %s" (Budget.string_of_stop s)
  | None -> Alcotest.fail "stats must record the deadline stop");
  Alcotest.(check bool) "stopped promptly" true (st.Solver.branches <= 1)

let test_solver_cancellation () =
  (* Cancel after a handful of boxes via the hook; the solver must stop and
     tag the stats. *)
  let boxes = ref 0 in
  let budget = Budget.make ~cancel:(fun () -> incr boxes; !boxes > 5) () in
  let opts = { Solver.default_options with Solver.delta = 1e-12 } in
  let verdict, st = Solver.solve ~options:opts ~budget ~bounds:bounds2 hard_formula in
  (match verdict with
  | Solver.Unknown -> ()
  | _ -> Alcotest.fail "expected Unknown after cancellation");
  match st.Solver.interrupted with
  | Some Budget.Cancelled -> ()
  | _ -> Alcotest.fail "stats must record the cancellation"

let test_solver_branch_pool () =
  (* A shared branch pool across two queries: the second query starts with
     a drained pool and must stop immediately. *)
  let budget = Budget.make ~branches:10 () in
  let opts = { Solver.default_options with Solver.delta = 1e-12 } in
  let _ = Solver.solve ~options:opts ~budget ~bounds:bounds2 hard_formula in
  let verdict, st = Solver.solve ~options:opts ~budget ~bounds:bounds2 hard_formula in
  (match verdict with
  | Solver.Unknown -> ()
  | _ -> Alcotest.fail "drained pool must yield Unknown");
  match st.Solver.interrupted with
  | Some Budget.Branch_budget -> ()
  | _ -> Alcotest.fail "stats must record the branch-pool stop"

let test_prove_universal () =
  (* ∀x ∈ [-1,1]: x² <= 1.01 — proved (note the margin: a property that
     holds with *zero* margin, like x² <= 1 on exactly [-1,1], is refutable
     in the δ-weakened sense — dReal's contract). *)
  let f = Formula.le (Expr.pow x 2) (Expr.const 1.01) in
  (match fst (Solver.prove ~bounds:[ ("x", -1.0, 1.0) ] f) with
  | Solver.Proved -> ()
  | Solver.Refuted _ | Solver.Not_decided -> Alcotest.fail "x^2 <= 1.01 on [-1,1] must prove");
  let f = Formula.le (Expr.pow x 2) (Expr.const 1.0) in
  (* ∀x ∈ [-2,2]: x² <= 1 — refuted with a witness beyond |x| = 1. *)
  (match fst (Solver.prove ~bounds:[ ("x", -2.0, 2.0) ] f) with
  | Solver.Refuted w ->
    let xv = List.assoc "x" w in
    Alcotest.(check bool) "witness violates" true (Float.abs xv > 1.0 -. 1e-2)
  | Solver.Proved -> Alcotest.fail "x^2 <= 1 on [-2,2] must refute"
  | Solver.Not_decided -> Alcotest.fail "should decide");
  (* A transcendental universal: ∀x ∈ [-3,3]: tanh(x)² < 1. *)
  match
    fst (Solver.prove ~bounds:[ ("x", -3.0, 3.0) ] (Formula.lt (Expr.pow (Expr.tanh x) 2) (Expr.const 1.0)))
  with
  | Solver.Proved -> ()
  | Solver.Refuted _ | Solver.Not_decided -> Alcotest.fail "tanh² < 1 must prove"

let test_solver_unbound_var_rejected () =
  Alcotest.check_raises "missing bounds"
    (Invalid_argument "Solver.solve: variable y has no bounds") (fun () ->
      ignore (Solver.solve ~bounds:[ ("x", 0.0, 1.0) ] (Formula.le y (Expr.const 0.0))))

let test_solver_duplicate_bounds_rejected () =
  Alcotest.check_raises "duplicate bounds"
    (Invalid_argument "Solver.solve: duplicate bounds for variable x") (fun () ->
      ignore
        (Solver.solve
           ~bounds:[ ("x", 0.0, 1.0); ("y", 0.0, 1.0); ("x", -1.0, 0.0) ]
           (Formula.le x y)))

let test_solver_parallel_agreement () =
  (* Verdicts must be independent of the job count: jobs=4 statically
     splits the initial box into subboxes, and the Unsat/Delta_sat merge
     must reproduce the sequential answer on every formula family. *)
  let solve_jobs jobs bounds f =
    fst (Solver.solve ~options:{ Solver.default_options with Solver.jobs } ~bounds f)
  in
  let circle_unsat =
    Formula.and_
      [
        Formula.le (Expr.( + ) (Expr.pow x 2) (Expr.pow y 2)) (Expr.const 1.0);
        Formula.ge (Expr.( + ) x y) (Expr.const 1.6);
      ]
  in
  let circle_sat =
    Formula.and_
      [
        Formula.le (Expr.( + ) (Expr.pow x 2) (Expr.pow y 2)) (Expr.const 1.0);
        Formula.ge (Expr.( + ) x y) (Expr.const 1.3);
      ]
  in
  let disjunct_unsat =
    Formula.and_
      [
        Formula.or_ [ Formula.le x (Expr.const (-1.5)); Formula.ge x (Expr.const 1.5) ];
        Formula.le (Expr.pow x 2) (Expr.const 1.0);
      ]
  in
  let tanh_unsat = Formula.gt (Expr.tanh x) (Expr.const 1.01) in
  let cases =
    [
      ("circle unsat", bounds2, circle_unsat);
      ("circle sat", bounds2, circle_sat);
      ("disjunction unsat", [ ("x", -2.0, 2.0) ], disjunct_unsat);
      ("tanh unsat", [ ("x", -100.0, 100.0) ], tanh_unsat);
    ]
  in
  List.iter
    (fun (name, bounds, f) ->
      match (solve_jobs 1 bounds f, solve_jobs 4 bounds f) with
      | Solver.Unsat, Solver.Unsat -> ()
      | Solver.Delta_sat w1, Solver.Delta_sat w4 ->
        (* Witnesses may differ across job counts, but both must satisfy
           the δ-weakened formula. *)
        Alcotest.(check bool)
          (name ^ ": sequential witness delta-holds")
          true
          (Formula.holds_delta 1e-2 w1 f);
        Alcotest.(check bool)
          (name ^ ": parallel witness delta-holds")
          true
          (Formula.holds_delta 1e-2 w4 f)
      | v1, v4 ->
        let s = function
          | Solver.Unsat -> "unsat"
          | Solver.Delta_sat _ -> "delta-sat"
          | Solver.Unknown -> "unknown"
        in
        Alcotest.failf "%s: jobs=1 gives %s but jobs=4 gives %s" name (s v1) (s v4))
    cases

let test_solver_parallel_stats_merged () =
  (* Parallel runs must still account every branch.  Under the static
     scheduler the merged stats of a jobs=4 refutation cover all 2^k
     subboxes, so the count is at least one visit each; under work
     stealing the same query may legitimately finish in fewer claimed
     boxes (no up-front split), but never zero, and the steal counters
     must come back merged rather than lost. *)
  let f =
    Formula.and_
      [
        Formula.le (Expr.( + ) (Expr.pow x 2) (Expr.pow y 2)) (Expr.const 1.0);
        Formula.ge (Expr.( + ) x y) (Expr.const 1.6);
      ]
  in
  let static =
    { Solver.default_options with Solver.jobs = 4; scheduler = Solver.Static_split }
  in
  let verdict, st = Solver.solve ~options:static ~bounds:bounds2 f in
  expect_unsat "parallel circle (static)" verdict;
  Alcotest.(check bool) "static branches accounted" true (st.Solver.branches >= 4);
  let stealing =
    { Solver.default_options with Solver.jobs = 4; scheduler = Solver.Work_stealing }
  in
  let verdict, st = Solver.solve ~options:stealing ~bounds:bounds2 f in
  expect_unsat "parallel circle (stealing)" verdict;
  Alcotest.(check bool) "stealing branches accounted" true (st.Solver.branches >= 1);
  Alcotest.(check bool)
    "stealing frontier recorded" true
    (st.Solver.frontier_high_water >= 1)

let test_solver_mvf_ablation () =
  (* Mean-value-form bounds must preserve verdicts and reduce branching on
     smooth tight-margin queries. *)
  let f =
    Formula.and_
      [
        Formula.le (Expr.( + ) (Expr.pow x 2) (Expr.pow y 2)) (Expr.const 1.0);
        Formula.ge (Expr.( + ) x y) (Expr.const 1.43);
      ]
  in
  let solve_with use_mvf =
    Solver.solve ~options:{ Solver.default_options with Solver.use_mvf } ~bounds:bounds2 f
  in
  let v_on, st_on = solve_with true in
  let v_off, st_off = solve_with false in
  expect_unsat "mvf on" v_on;
  expect_unsat "mvf off" v_off;
  Alcotest.(check bool)
    (Printf.sprintf "mvf branches %d <= plain %d" st_on.Solver.branches st_off.Solver.branches)
    true
    (st_on.Solver.branches <= st_off.Solver.branches)

let test_solver_branching_heuristics_agree () =
  (* Widest-first and smear must agree on verdicts. *)
  let f =
    Formula.and_
      [
        Formula.le (Expr.( + ) (Expr.pow x 2) (Expr.( * ) (Expr.const 4.0) (Expr.pow y 2)))
          (Expr.const 1.0);
        Formula.ge (Expr.( - ) (Expr.sin x) y) (Expr.const 0.9);
      ]
  in
  let run branching =
    fst (Solver.solve ~options:{ Solver.default_options with Solver.branching } ~bounds:bounds2 f)
  in
  match (run Solver.Widest, run Solver.Smear) with
  | Solver.Unsat, Solver.Unsat | Solver.Delta_sat _, Solver.Delta_sat _ -> ()
  | _ -> Alcotest.fail "branching heuristics disagree on the verdict"

let test_solver_forward_only_ablation () =
  (* Forward-only mode must agree on verdicts (it is still sound), just
     with more branching. *)
  let f =
    Formula.and_
      [
        Formula.le (Expr.( + ) (Expr.pow x 2) (Expr.pow y 2)) (Expr.const 1.0);
        Formula.ge (Expr.( + ) x y) (Expr.const 1.6);
      ]
  in
  let opts = { Solver.default_options with Solver.use_backward = false } in
  let v, st = Solver.solve ~options:opts ~bounds:bounds2 f in
  expect_unsat "forward-only" v;
  let _, st_hc4 = Solver.solve ~bounds:bounds2 f in
  Alcotest.(check bool)
    (Printf.sprintf "forward-only branches %d >= hc4 branches %d" st.Solver.branches
       st_hc4.Solver.branches)
    true
    (st.Solver.branches >= st_hc4.Solver.branches)

let prop_solver_sound_on_linear =
  (* For random linear constraints the exact answer is checkable: a
     conjunction a1·x + b1·y <= c1 ∧ a2·x + b2·y <= c2 over a box is
     satisfiable iff some corner/vertex candidate satisfies it (linear,
     so the feasible set, if nonempty, touches the box of candidates
     densely; we just sample). *)
  QCheck.Test.make ~name:"no unsat verdict when a solution point exists" ~count:200
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let a1 = Rng.uniform rng (-1.0) 1.0
      and b1 = Rng.uniform rng (-1.0) 1.0
      and c1 = Rng.uniform rng (-1.0) 1.0 in
      let a2 = Rng.uniform rng (-1.0) 1.0
      and b2 = Rng.uniform rng (-1.0) 1.0
      and c2 = Rng.uniform rng (-1.0) 1.0 in
      let lhs1 = Expr.( + ) (Expr.( * ) (Expr.const a1) x) (Expr.( * ) (Expr.const b1) y) in
      let lhs2 = Expr.( + ) (Expr.( * ) (Expr.const a2) x) (Expr.( * ) (Expr.const b2) y) in
      let f = Formula.and_ [ Formula.le lhs1 (Expr.const c1); Formula.le lhs2 (Expr.const c2) ] in
      (* Sample candidate solutions. *)
      let found = ref false in
      for _ = 1 to 200 do
        let px = Rng.uniform rng (-2.0) 2.0 and py = Rng.uniform rng (-2.0) 2.0 in
        if (a1 *. px) +. (b1 *. py) <= c1 && (a2 *. px) +. (b2 *. py) <= c2 then found := true
      done;
      match solve bounds2 f with
      | Solver.Unsat -> not !found
      | Solver.Delta_sat _ | Solver.Unknown -> true)

let prop_scheduler_parity =
  (* The sat/unsat verdict must be independent of the job count, of the
     scheduler, and of the steal interleaving (exercised through distinct
     victim-rotation seeds): the branch-and-prune tree is deterministic
     given the options, so every traversal order reaches the same
     conclusion.  Witnesses may differ between runs, but every Delta_sat
     witness must δ-hold. *)
  QCheck.Test.make ~name:"verdict parity across jobs, schedulers and steal seeds" ~count:30
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let coef () = Expr.const (Rng.uniform rng (-2.0) 2.0) in
      let term () =
        match Rng.int rng 4 with
        | 0 -> Expr.( * ) (coef ()) x
        | 1 -> Expr.( * ) (coef ()) y
        | 2 -> Expr.( * ) (coef ()) (Expr.sin x)
        | _ -> Expr.( * ) (coef ()) (Expr.pow y 2)
      in
      let atom () =
        let lhs = Expr.( + ) (term ()) (term ()) in
        let rhs = Expr.const (Rng.uniform rng (-1.5) 1.5) in
        if Rng.int rng 2 = 0 then Formula.le lhs rhs else Formula.ge lhs rhs
      in
      let f =
        match Rng.int rng 3 with
        | 0 -> atom ()
        | 1 -> Formula.and_ [ atom (); atom () ]
        | _ -> Formula.or_ [ atom (); Formula.and_ [ atom (); atom () ] ]
      in
      let delta = 1e-2 in
      let run jobs scheduler steal_seed =
        fst
          (Solver.solve
             ~options:{ Solver.default_options with Solver.delta; jobs; scheduler; steal_seed }
             ~bounds:bounds2 f)
      in
      let witness_ok = function
        | Solver.Delta_sat w -> Formula.holds_delta delta w f
        | Solver.Unsat | Solver.Unknown -> true
      in
      let base = run 1 Solver.Work_stealing 0 in
      let runs =
        run 4 Solver.Static_split 0
        :: List.map (fun s -> run 4 Solver.Work_stealing s) [ 1; 2; 3 ]
      in
      witness_ok base
      && List.for_all
           (fun v ->
             witness_ok v
             &&
             match (base, v) with
             | Solver.Unsat, Solver.Unsat
             | Solver.Delta_sat _, Solver.Delta_sat _
             | Solver.Unknown, Solver.Unknown -> true
             | _ -> false)
           runs)

let test_solver_steal_imbalanced () =
  (* Margin-tight refutation whose work concentrates in the corner subtree
     near x + y = √2: under a static split most subboxes refute instantly
     and one carries hundreds of branches, so this is the load-imbalance
     regression for the work-stealing scheduler.  Verdict and branch count
     must match the sequential run exactly; steals must actually occur.
     The wall-clock bound is deliberately generous (the CI container may
     expose a single core, where extra domains only add overhead). *)
  let f =
    Formula.and_
      [
        Formula.le (Expr.( + ) (Expr.pow x 2) (Expr.pow y 2)) (Expr.const 1.0);
        Formula.ge (Expr.( + ) x y) (Expr.const 1.4142137);
      ]
  in
  let opts jobs = { Solver.default_options with Solver.delta = 1e-7; jobs } in
  let (v1, st1), dt1 =
    Timing.time (fun () -> Solver.solve ~options:(opts 1) ~bounds:bounds2 f)
  in
  let (v4, st4), dt4 =
    Timing.time (fun () -> Solver.solve ~options:(opts 4) ~bounds:bounds2 f)
  in
  expect_unsat "imbalanced jobs=1" v1;
  expect_unsat "imbalanced jobs=4" v4;
  Alcotest.(check int) "branch count matches sequential" st1.Solver.branches st4.Solver.branches;
  Alcotest.(check bool) "steals occurred" true (st4.Solver.steals > 0);
  Alcotest.(check bool) "frontier widened" true (st4.Solver.frontier_high_water > 1);
  Alcotest.(check bool)
    (Printf.sprintf "stealing wall %.4fs within 10x sequential %.4fs + 0.25s slack" dt4 dt1)
    true
    (dt4 <= (10.0 *. dt1) +. 0.25)

let test_solver_prepared_reuse () =
  (* prepare-once/solve-many: all tape compilation happens in [prepare];
     subsequent [solve_prepared] calls over different bounds compile
     nothing. *)
  let f =
    Formula.and_
      [
        Formula.le (Expr.( + ) (Expr.pow x 2) (Expr.pow y 2)) (Expr.const 1.0);
        Formula.ge (Expr.( + ) x y) (Expr.const 1.3);
      ]
  in
  let before = Tape.compile_count () in
  let p = Solver.prepare ~vars:[ "x"; "y" ] f in
  let compiled_by_prepare = Tape.compile_count () - before in
  Alcotest.(check bool) "prepare compiles the tapes" true (compiled_by_prepare > 0);
  let before_solves = Tape.compile_count () in
  expect_unsat "prepared unsat box"
    (fst (Solver.solve_prepared p ~bounds:[ ("x", -1.0, -0.5); ("y", -1.0, -0.5) ]));
  let w = expect_sat "prepared sat box" (fst (Solver.solve_prepared p ~bounds:bounds2)) in
  Alcotest.(check bool) "prepared witness delta-holds" true
    (Formula.holds_delta Solver.default_options.Solver.delta w f);
  Alcotest.(check int) "solve_prepared compiles nothing" before_solves (Tape.compile_count ());
  (* Per-call option overrides are allowed for everything except the
     engine, which is baked into the compiled form. *)
  expect_unsat "prepared with overridden delta"
    (fst
       (Solver.solve_prepared
          ~options:{ Solver.default_options with Solver.delta = 1e-5 }
          p
          ~bounds:[ ("x", -1.0, -0.5); ("y", -1.0, -0.5) ]));
  (match
     Solver.solve_prepared
       ~options:{ Solver.default_options with Solver.engine = Solver.Tree_eval }
       p ~bounds:bounds2
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "engine mismatch must be rejected");
  (* Bounds must list exactly the prepared variables, in prepare order. *)
  (match Solver.solve_prepared p ~bounds:[ ("y", -2.0, 2.0); ("x", -2.0, 2.0) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "reordered bounds must be rejected");
  (match Solver.solve_prepared p ~bounds:[ ("x", -2.0, 2.0) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "missing bounds must be rejected")

let () =
  Alcotest.run "smt"
    [
      ( "box",
        [
          Alcotest.test_case "basics" `Quick test_box_basics;
          Alcotest.test_case "duplicate rejected" `Quick test_box_duplicate;
        ] );
      ( "formula",
        [
          Alcotest.test_case "evaluation" `Quick test_formula_eval;
          Alcotest.test_case "simplification" `Quick test_formula_simplification;
          Alcotest.test_case "dnf" `Quick test_dnf;
          Alcotest.test_case "dnf with negation" `Quick test_dnf_negation;
          Alcotest.test_case "free vars" `Quick test_free_vars;
          Alcotest.test_case "delta-weakened truth" `Quick test_holds_delta;
        ] );
      ( "hc4",
        [
          Alcotest.test_case "linear contraction" `Quick test_hc4_linear_contraction;
          Alcotest.test_case "empty detection" `Quick test_hc4_empty;
          Alcotest.test_case "tanh inversion" `Quick test_hc4_tanh_inversion;
          Alcotest.test_case "certainly true" `Quick test_hc4_certainly_true;
          Alcotest.test_case "change reporting" `Quick test_hc4_change_reporting;
          QCheck_alcotest.to_alcotest prop_hc4_sound;
        ] );
      ( "solver",
        [
          Alcotest.test_case "circle unsat" `Quick test_solver_circle_unsat;
          Alcotest.test_case "circle sat" `Quick test_solver_circle_sat;
          Alcotest.test_case "trig root" `Quick test_solver_trig_root;
          Alcotest.test_case "tanh bound" `Quick test_solver_tanh_bound;
          Alcotest.test_case "disjunction" `Quick test_solver_disjunction;
          Alcotest.test_case "rect helpers" `Quick test_solver_rect_helpers;
          Alcotest.test_case "unknown under budget" `Quick test_solver_unknown_budget;
          Alcotest.test_case "deadline stop" `Quick test_solver_deadline_stop;
          Alcotest.test_case "cancellation stop" `Quick test_solver_cancellation;
          Alcotest.test_case "shared branch pool" `Quick test_solver_branch_pool;
          Alcotest.test_case "unbound var rejected" `Quick test_solver_unbound_var_rejected;
          Alcotest.test_case "duplicate bounds rejected" `Quick
            test_solver_duplicate_bounds_rejected;
          Alcotest.test_case "parallel verdict agreement" `Quick
            test_solver_parallel_agreement;
          Alcotest.test_case "parallel stats merged" `Quick test_solver_parallel_stats_merged;
          Alcotest.test_case "universal prove wrapper" `Quick test_prove_universal;
          Alcotest.test_case "forward-only ablation" `Quick test_solver_forward_only_ablation;
          Alcotest.test_case "mean-value-form ablation" `Quick test_solver_mvf_ablation;
          Alcotest.test_case "branching heuristics agree" `Quick test_solver_branching_heuristics_agree;
          Alcotest.test_case "imbalanced workload steals" `Quick test_solver_steal_imbalanced;
          Alcotest.test_case "prepared query reuse" `Quick test_solver_prepared_reuse;
          QCheck_alcotest.to_alcotest prop_solver_sound_on_linear;
          QCheck_alcotest.to_alcotest prop_scheduler_parity;
        ] );
    ]
