(* Tests for the ODE integrators: convergence order on systems with known
   closed-form solutions, adaptive error control, trace utilities. *)

let check_float = Alcotest.(check (float 1e-9))

(* ẋ = -x, x(0) = 1: x(t) = e^{-t}. *)
let decay _t x = [| -.x.(0) |]

(* Harmonic oscillator: ẋ = y, ẏ = -x; energy x² + y² is conserved. *)
let oscillator _t x = [| x.(1); -.x.(0) |]

let test_euler_decay () =
  let tr = Ode.simulate ~method_:`Euler decay ~t0:0.0 ~x0:[| 1.0 |] ~dt:1e-4 ~steps:10_000 in
  let final = Ode.final_state tr in
  Alcotest.(check bool) "euler close" true (Float.abs (final.(0) -. Float.exp (-1.0)) < 1e-3)

let test_rk4_decay () =
  let tr = Ode.simulate decay ~t0:0.0 ~x0:[| 1.0 |] ~dt:0.01 ~steps:100 in
  let final = Ode.final_state tr in
  Alcotest.(check bool) "rk4 close" true (Float.abs (final.(0) -. Float.exp (-1.0)) < 1e-9)

let global_error method_ dt =
  let steps = int_of_float (1.0 /. dt) in
  let tr = Ode.simulate ~method_ decay ~t0:0.0 ~x0:[| 1.0 |] ~dt ~steps in
  Float.abs ((Ode.final_state tr).(0) -. Float.exp (-1.0))

let test_euler_order1 () =
  (* Halving dt should roughly halve the global error. *)
  let e1 = global_error `Euler 0.01 and e2 = global_error `Euler 0.005 in
  let ratio = e1 /. e2 in
  Alcotest.(check bool)
    (Printf.sprintf "ratio %.2f in [1.7, 2.3]" ratio)
    true
    (ratio > 1.7 && ratio < 2.3)

let test_rk4_order4 () =
  let e1 = global_error `Rk4 0.1 and e2 = global_error `Rk4 0.05 in
  let ratio = e1 /. e2 in
  Alcotest.(check bool)
    (Printf.sprintf "ratio %.1f in [12, 20]" ratio)
    true
    (ratio > 12.0 && ratio < 20.0)

let test_rk4_energy_conservation () =
  let tr = Ode.simulate oscillator ~t0:0.0 ~x0:[| 1.0; 0.0 |] ~dt:0.01 ~steps:1000 in
  Array.iter
    (fun s ->
      let energy = (s.(0) *. s.(0)) +. (s.(1) *. s.(1)) in
      if Float.abs (energy -. 1.0) > 1e-6 then
        Alcotest.failf "energy drifted to %.8f" energy)
    tr.Ode.states

let test_trace_shape () =
  let tr = Ode.simulate decay ~t0:0.0 ~x0:[| 1.0 |] ~dt:0.1 ~steps:10 in
  Alcotest.(check int) "length" 11 (Ode.trace_length tr);
  check_float "t0" 0.0 tr.Ode.times.(0);
  Alcotest.(check bool) "t_end" true (Float.abs (tr.Ode.times.(10) -. 1.0) < 1e-12);
  check_float "x0 kept" 1.0 tr.Ode.states.(0).(0)

let test_simulate_until_stop () =
  let tr =
    Ode.simulate_until
      ~stop:(fun _ x -> x.(0) < 0.5)
      decay ~t0:0.0 ~x0:[| 1.0 |] ~dt:0.01 ~t_end:10.0
  in
  let final = Ode.final_state tr in
  Alcotest.(check bool) "stopped below threshold" true (final.(0) < 0.5);
  Alcotest.(check bool) "stopped promptly" true (final.(0) > 0.48)

let test_rk45_accuracy () =
  let tr = Ode.simulate_rk45 decay ~t0:0.0 ~x0:[| 1.0 |] ~t_end:1.0 in
  let final = Ode.final_state tr in
  Alcotest.(check bool) "rk45 meets tolerance" true
    (Float.abs (final.(0) -. Float.exp (-1.0)) < 1e-6);
  let t_last = tr.Ode.times.(Ode.trace_length tr - 1) in
  Alcotest.(check bool) "lands on t_end" true (Float.abs (t_last -. 1.0) < 1e-9)

let test_rk45_oscillator_long () =
  let tr = Ode.simulate_rk45 oscillator ~t0:0.0 ~x0:[| 1.0; 0.0 |] ~t_end:(4.0 *. Float.pi) in
  let final = Ode.final_state tr in
  (* Two full periods: back to the start. *)
  Alcotest.(check bool) "periodic return" true
    (Float.abs (final.(0) -. 1.0) < 1e-5 && Float.abs final.(1) < 1e-5)

let test_rk45_adapts_step () =
  (* A field with a fast transient then slow decay should use varied steps. *)
  let stiff _t x = [| -50.0 *. x.(0) |] in
  let tr = Ode.simulate_rk45 stiff ~t0:0.0 ~x0:[| 1.0 |] ~t_end:1.0 in
  let n = Ode.trace_length tr in
  let early = tr.Ode.times.(1) -. tr.Ode.times.(0) in
  let late = tr.Ode.times.(n - 1) -. tr.Ode.times.(n - 2) in
  Alcotest.(check bool)
    (Printf.sprintf "late step %.4g > early %.4g" late early)
    true (late > early)

let test_resample () =
  let tr = Ode.simulate_rk45 decay ~t0:0.0 ~x0:[| 1.0 |] ~t_end:1.0 in
  let rs = Ode.resample tr ~dt:0.1 in
  Alcotest.(check int) "sample count" 11 (Ode.trace_length rs);
  Array.iteri
    (fun i t ->
      let expected = Float.exp (-.t) in
      if Float.abs (rs.Ode.states.(i).(0) -. expected) > 1e-3 then
        Alcotest.failf "resample at %.2f: %g vs %g" t rs.Ode.states.(i).(0) expected)
    rs.Ode.times

let test_resample_linear_interp () =
  (* On a hand-built non-uniform trace, every resampled state must be the
     exact linear interpolation of its bracketing input samples — the
     forward-cursor rewrite must not change which segment brackets a
     sample. *)
  let tr =
    {
      Ode.times = [| 0.0; 0.3; 0.35; 1.0; 1.1; 2.0 |];
      states = [| [| 0.0 |]; [| 3.0 |]; [| 2.0 |]; [| 6.5 |]; [| 6.0 |]; [| -1.0 |] |];
    }
  in
  let interp t =
    let n = Array.length tr.Ode.times in
    let i = ref 0 in
    while !i + 1 < n - 1 && tr.Ode.times.(!i + 1) < t do
      incr i
    done;
    let t1 = tr.Ode.times.(!i) and t2 = tr.Ode.times.(!i + 1) in
    let w = (t -. t1) /. (t2 -. t1) in
    tr.Ode.states.(!i).(0) +. (w *. (tr.Ode.states.(!i + 1).(0) -. tr.Ode.states.(!i).(0)))
  in
  let rs = Ode.resample tr ~dt:0.17 in
  Alcotest.(check int) "sample count" (1 + int_of_float (Float.floor (2.0 /. 0.17)))
    (Ode.trace_length rs);
  Array.iteri
    (fun i t ->
      let expected = interp t in
      if Float.abs (rs.Ode.states.(i).(0) -. expected) > 1e-12 then
        Alcotest.failf "resample at %.3f: %g vs interpolated %g" t rs.Ode.states.(i).(0)
          expected)
    rs.Ode.times

let test_negative_steps_rejected () =
  Alcotest.check_raises "negative steps" (Invalid_argument "Ode.simulate: negative step count")
    (fun () -> ignore (Ode.simulate decay ~t0:0.0 ~x0:[| 1.0 |] ~dt:0.1 ~steps:(-1)))

let prop_rk4_decay_2d =
  QCheck.Test.make ~name:"rk4 matches exp decay for random rates" ~count:100
    QCheck.(pair (float_range 0.1 3.0) (float_range 0.1 3.0))
    (fun (a, b) ->
      let field _t x = [| -.a *. x.(0); -.b *. x.(1) |] in
      let tr = Ode.simulate field ~t0:0.0 ~x0:[| 1.0; 2.0 |] ~dt:0.01 ~steps:100 in
      let final = Ode.final_state tr in
      Float.abs (final.(0) -. Float.exp (-.a)) < 1e-6
      && Float.abs (final.(1) -. (2.0 *. Float.exp (-.b))) < 1e-6)

let prop_rk45_times_increase =
  QCheck.Test.make ~name:"rk45 trace times strictly increase" ~count:50
    QCheck.(float_range 0.5 5.0)
    (fun t_end ->
      let tr = Ode.simulate_rk45 oscillator ~t0:0.0 ~x0:[| 1.0; 0.5 |] ~t_end in
      let ok = ref true in
      for i = 0 to Ode.trace_length tr - 2 do
        if tr.Ode.times.(i + 1) <= tr.Ode.times.(i) then ok := false
      done;
      !ok)

let () =
  Alcotest.run "ode"
    [
      ( "fixed-step",
        [
          Alcotest.test_case "euler decay" `Quick test_euler_decay;
          Alcotest.test_case "rk4 decay" `Quick test_rk4_decay;
          Alcotest.test_case "euler is first order" `Quick test_euler_order1;
          Alcotest.test_case "rk4 is fourth order" `Quick test_rk4_order4;
          Alcotest.test_case "rk4 energy conservation" `Quick test_rk4_energy_conservation;
          Alcotest.test_case "trace shape" `Quick test_trace_shape;
          Alcotest.test_case "stop predicate" `Quick test_simulate_until_stop;
          Alcotest.test_case "rejects negative steps" `Quick test_negative_steps_rejected;
          QCheck_alcotest.to_alcotest prop_rk4_decay_2d;
        ] );
      ( "adaptive",
        [
          Alcotest.test_case "rk45 accuracy" `Quick test_rk45_accuracy;
          Alcotest.test_case "rk45 long-horizon oscillator" `Quick test_rk45_oscillator_long;
          Alcotest.test_case "rk45 adapts the step" `Quick test_rk45_adapts_step;
          Alcotest.test_case "resample" `Quick test_resample;
          Alcotest.test_case "resample matches linear interpolation" `Quick
            test_resample_linear_interp;
          QCheck_alcotest.to_alcotest prop_rk45_times_increase;
        ] );
    ]
