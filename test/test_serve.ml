(* Tests for the serve daemon: bounded-queue semantics, wire-protocol
   parsing, and — the point of the subsystem — live fault-injection
   against a running daemon: malformed/oversized/chopped lines, crashing
   handlers, blown deadlines, backpressure shedding, and graceful drain,
   all without a single daemon exit.  The daemon runs in a domain inside
   the test process; handlers are deterministic stubs except for one
   end-to-end test against the real cache-fronted handler. *)

(* --- helpers ----------------------------------------------------------- *)

let sock_counter = ref 0

let fresh_socket () =
  incr sock_counter;
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "sbsrv%d-%d.sock" (Unix.getpid ()) !sock_counter)

let tmpdir_counter = ref 0

let fresh_dir () =
  incr tmpdir_counter;
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "sbsrvstore%d-%d" (Unix.getpid ()) !tmpdir_counter)
  in
  (try Unix.mkdir d 0o755 with Unix.Unix_error (EEXIST, _, _) -> ());
  d

(* Run [f socket control] against a live daemon; always drain and join so
   no domain outlives its test.  Returns [f]'s result, the daemon stats,
   and the config (for serve_report). *)
let with_daemon ?(workers = 2) ?(queue_capacity = 64) ?max_line_bytes ?default_timeout
    ?deadline ?(drain_grace = 5.0) handler f =
  let socket_path = fresh_socket () in
  let base = Daemon.default_config ~socket_path in
  let cfg =
    {
      base with
      Daemon.workers;
      queue_capacity;
      max_line_bytes = Option.value ~default:base.Daemon.max_line_bytes max_line_bytes;
      default_timeout;
      deadline;
      drain_grace;
    }
  in
  let ctrl = Daemon.control () in
  let daemon = Domain.spawn (fun () -> Daemon.run ~control:ctrl ~handler cfg) in
  let ready_by = Unix.gettimeofday () +. 5.0 in
  while (not (Sys.file_exists socket_path)) && Unix.gettimeofday () < ready_by do
    Unix.sleepf 0.01
  done;
  match f socket_path ctrl with
  | result ->
    Daemon.request_drain ctrl;
    let stats = Domain.join daemon in
    (result, stats, cfg)
  | exception e ->
    Daemon.request_drain ctrl;
    (try ignore (Domain.join daemon) with _ -> ());
    raise e

type client = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect path =
  let rec go tries =
    let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
    match Unix.connect fd (ADDR_UNIX path) with
    | () -> fd
    | exception Unix.Unix_error ((ENOENT | ECONNREFUSED), _, _) when tries > 0 ->
      Unix.close fd;
      Unix.sleepf 0.02;
      go (tries - 1)
  in
  let fd = go 250 in
  { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

let send_line c line =
  output_string c.oc line;
  output_char c.oc '\n';
  flush c.oc

let send_raw c s =
  output_string c.oc s;
  flush c.oc

let recv c =
  let line = input_line c.ic in
  match Obs.Json.of_string line with
  | Ok json -> json
  | Error e -> Alcotest.failf "daemon wrote a non-JSON line %S: %s" line e

let recv_n c n = List.init n (fun _ -> recv c)

let disconnect c = Unix.close c.fd

let status json =
  match Protocol.response_status json with
  | Some s -> s
  | None -> Alcotest.failf "response without status: %s" (Obs.Json.to_string json)

let rid json = Protocol.response_id json

let sorted_statuses responses = List.sort compare (List.map status responses)

let check_ids what expected responses =
  let got = List.filter_map rid responses |> List.sort compare in
  Alcotest.(check (list string)) what (List.sort compare expected) got

let ok_handler ~budget:_ _ = ("ok", [])

(* Wait until the handler itself reports [n] requests started. *)
let await_started started n =
  let deadline = Unix.gettimeofday () +. 5.0 in
  while Atomic.get started < n && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.005
  done;
  Alcotest.(check int) "handler started" n (Atomic.get started)

(* --- Bqueue ------------------------------------------------------------ *)

let test_bqueue_bounded_fifo () =
  let q = Bqueue.create ~capacity:3 in
  Alcotest.(check int) "capacity" 3 (Bqueue.capacity q);
  Alcotest.(check bool) "push 1" true (Bqueue.try_push q 1);
  Alcotest.(check bool) "push 2" true (Bqueue.try_push q 2);
  Alcotest.(check bool) "push 3" true (Bqueue.try_push q 3);
  Alcotest.(check bool) "push into full queue refused" false (Bqueue.try_push q 4);
  Alcotest.(check int) "depth" 3 (Bqueue.depth q);
  Alcotest.(check (option int)) "fifo 1" (Some 1) (Bqueue.pop q);
  Alcotest.(check (option int)) "fifo 2" (Some 2) (Bqueue.pop q);
  Alcotest.(check bool) "room again" true (Bqueue.try_push q 5);
  Alcotest.(check (option int)) "fifo 3" (Some 3) (Bqueue.pop q);
  Alcotest.(check (option int)) "fifo 5" (Some 5) (Bqueue.pop q);
  Alcotest.(check int) "high water" 3 (Bqueue.high_water q)

let test_bqueue_close_drains () =
  let q = Bqueue.create ~capacity:4 in
  ignore (Bqueue.try_push q "a");
  ignore (Bqueue.try_push q "b");
  Bqueue.close q;
  Bqueue.close q (* idempotent *);
  Alcotest.(check bool) "push after close refused" false (Bqueue.try_push q "c");
  Alcotest.(check (option string)) "accepted item drains" (Some "a") (Bqueue.pop q);
  Alcotest.(check (option string)) "second item drains" (Some "b") (Bqueue.pop q);
  Alcotest.(check (option string)) "then None" None (Bqueue.pop q);
  Alcotest.(check (option string)) "None stays None" None (Bqueue.pop q)

let test_bqueue_bad_capacity () =
  Alcotest.check_raises "capacity 0" (Invalid_argument "Bqueue.create: capacity must be positive")
    (fun () -> ignore (Bqueue.create ~capacity:0))

let test_bqueue_concurrent () =
  let q = Bqueue.create ~capacity:16 in
  let producers = 4 and per_producer = 50 in
  let prods =
    List.init producers (fun p ->
        Domain.spawn (fun () ->
            for i = 0 to per_producer - 1 do
              let item = (p * per_producer) + i in
              while not (Bqueue.try_push q item) do
                Domain.cpu_relax ()
              done
            done))
  in
  let popped = Atomic.make [] in
  let consumers =
    List.init 2 (fun _ ->
        Domain.spawn (fun () ->
            let rec loop acc =
              match Bqueue.pop q with None -> acc | Some x -> loop (x :: acc)
            in
            let mine = loop [] in
            let rec publish () =
              let cur = Atomic.get popped in
              if not (Atomic.compare_and_set popped cur (mine @ cur)) then publish ()
            in
            publish ()))
  in
  List.iter Domain.join prods;
  Bqueue.close q;
  List.iter Domain.join consumers;
  let all = List.sort compare (Atomic.get popped) in
  Alcotest.(check (list int))
    "every accepted item popped exactly once"
    (List.init (producers * per_producer) Fun.id)
    all;
  Alcotest.(check bool) "high water bounded by capacity" true (Bqueue.high_water q <= 16)

(* --- Protocol ---------------------------------------------------------- *)

let test_protocol_roundtrip () =
  let line =
    Protocol.verify_line ~id:"r1" ~network_path:"net.nn" ~width:4 ~seed:11 ~gamma:1e-5
      ~timeout:2.5 ~lie:true ~linear_terms:true ~no_cache:true ()
  in
  match Protocol.parse_line line with
  | Ok { Protocol.id = "r1"; op = Protocol.Verify p } ->
    Alcotest.(check (option string)) "network" (Some "net.nn") p.Protocol.network_path;
    Alcotest.(check int) "width" 4 p.Protocol.width;
    Alcotest.(check int) "seed" 11 p.Protocol.seed;
    Alcotest.(check (option (float 0.0))) "gamma" (Some 1e-5) p.Protocol.gamma;
    Alcotest.(check (option (float 0.0))) "timeout" (Some 2.5) p.Protocol.timeout;
    Alcotest.(check bool) "lie" true p.Protocol.lie;
    Alcotest.(check bool) "linear_terms" true p.Protocol.linear_terms;
    Alcotest.(check bool) "no_cache" true p.Protocol.no_cache
  | Ok _ -> Alcotest.fail "wrong request shape"
  | Error e -> Alcotest.fail (Protocol.string_of_parse_error e)

let test_protocol_defaults_and_ping () =
  (match Protocol.parse_line {|{"id":"d"}|} with
  | Ok { Protocol.op = Protocol.Verify p; _ } ->
    Alcotest.(check int) "default width" 10 p.Protocol.width;
    Alcotest.(check int) "default seed" 7 p.Protocol.seed;
    Alcotest.(check (option string)) "no network" None p.Protocol.network_path;
    Alcotest.(check bool) "no_cache off" false p.Protocol.no_cache
  | _ -> Alcotest.fail "bare id must default to verify");
  match Protocol.parse_line (Protocol.ping_line ~id:"p") with
  | Ok { Protocol.id = "p"; op = Protocol.Ping } -> ()
  | _ -> Alcotest.fail "ping round-trip"

let expect_error what line check =
  match Protocol.parse_line line with
  | Ok _ -> Alcotest.failf "%s: expected a parse error" what
  | Error e -> check e

let test_protocol_rejects () =
  expect_error "missing id" {|{"op":"verify"}|} (function
    | Protocol.Bad_request { id = None; _ } -> ()
    | e -> Alcotest.fail (Protocol.string_of_parse_error e));
  expect_error "not json" (Faults.malformed_json_line ()) (function
    | Protocol.Not_json _ -> ()
    | e -> Alcotest.fail (Protocol.string_of_parse_error e));
  expect_error "not an object" {|[1,2]|} (function
    | Protocol.Bad_request { id = None; _ } -> ()
    | e -> Alcotest.fail (Protocol.string_of_parse_error e));
  expect_error "unknown op" {|{"id":"x","op":"launch"}|} (function
    | Protocol.Bad_request { id = Some "x"; _ } -> ()
    | e -> Alcotest.fail (Protocol.string_of_parse_error e));
  expect_error "wrong width type" {|{"id":"x","width":"ten"}|} (function
    | Protocol.Bad_request { id = Some "x"; _ } -> ()
    | e -> Alcotest.fail (Protocol.string_of_parse_error e));
  expect_error "non-positive timeout" {|{"id":"x","timeout":0}|} (function
    | Protocol.Bad_request { id = Some "x"; _ } -> ()
    | e -> Alcotest.fail (Protocol.string_of_parse_error e));
  let big = Faults.oversized_line ~target_bytes:512 in
  match Protocol.parse_line ~max_bytes:256 big with
  | Error (Protocol.Oversized n) ->
    Alcotest.(check bool) "reported length" true (n >= 512)
  | _ -> Alcotest.fail "oversized must be rejected before parsing"

let test_protocol_forward_compat () =
  match Protocol.parse_line {|{"id":"f","op":"verify","future_field":[1,2],"width":3}|} with
  | Ok { Protocol.op = Protocol.Verify p; _ } ->
    Alcotest.(check int) "width still parsed" 3 p.Protocol.width
  | _ -> Alcotest.fail "unknown fields must be ignored"

let test_protocol_response_accessors () =
  let line = Protocol.response_line ~id:(Some "r9") ~status:"shed" [] in
  let json = Result.get_ok (Obs.Json.of_string line) in
  Alcotest.(check (option string)) "id" (Some "r9") (Protocol.response_id json);
  Alcotest.(check (option string)) "status" (Some "shed") (Protocol.response_status json);
  let anon = Protocol.response_line ~id:None ~status:"invalid" [] in
  let json = Result.get_ok (Obs.Json.of_string anon) in
  Alcotest.(check (option string)) "null id" None (Protocol.response_id json)

(* --- Daemon: healthy path ---------------------------------------------- *)

let test_daemon_healthy_batch () =
  let ids = List.init 6 (fun i -> Printf.sprintf "h%d" i) in
  let responses, stats, _ =
    with_daemon ok_handler (fun sock _ ->
        let c = connect sock in
        List.iter (fun id -> send_line c (Protocol.verify_line ~id ())) ids;
        let rs = recv_n c (List.length ids) in
        disconnect c;
        rs)
  in
  Alcotest.(check (list string)) "all ok"
    (List.map (fun _ -> "ok") ids)
    (sorted_statuses responses);
  check_ids "every id answered" ids responses;
  Alcotest.(check int) "received" 6 stats.Daemon.counts.Daemon.received;
  Alcotest.(check int) "ok" 6 stats.Daemon.counts.Daemon.ok;
  Alcotest.(check int) "latency samples" 6 (List.length stats.Daemon.latencies);
  Alcotest.(check bool) "clean drain" false stats.Daemon.timeboxed

let test_daemon_ping () =
  let json, stats, _ =
    with_daemon ok_handler (fun sock _ ->
        let c = connect sock in
        send_line c (Protocol.ping_line ~id:"p1");
        let r = recv c in
        disconnect c;
        r)
  in
  Alcotest.(check string) "pong ok" "ok" (status json);
  Alcotest.(check (option string)) "id" (Some "p1") (rid json);
  Alcotest.(check int) "counted as ping" 1 stats.Daemon.counts.Daemon.pings;
  Alcotest.(check int) "not a verify" 0 stats.Daemon.counts.Daemon.ok

(* --- Daemon: crash isolation ------------------------------------------- *)

let test_daemon_crash_isolation () =
  (* raising_oracle ~after:1: the injected handler crashes on every call. *)
  let crash = Faults.raising_oracle ~after:1 (Failure "injected crash") (fun _ -> ("ok", [])) in
  let handler ~budget:_ (p : Protocol.verify_params) =
    if p.Protocol.network_path = Some "crash" then crash p else ("ok", [])
  in
  let (mixed, extra), stats, _ =
    with_daemon handler (fun sock _ ->
        let c = connect sock in
        send_line c (Protocol.verify_line ~id:"c1" ~network_path:"crash" ());
        send_line c (Protocol.verify_line ~id:"g1" ());
        send_line c (Protocol.verify_line ~id:"c2" ~network_path:"crash" ());
        send_line c (Protocol.verify_line ~id:"g2" ());
        let mixed = recv_n c 4 in
        disconnect c;
        (* The daemon must keep serving fresh connections after crashes. *)
        let c2 = connect sock in
        send_line c2 (Protocol.verify_line ~id:"after" ());
        let extra = recv c2 in
        disconnect c2;
        (mixed, extra))
  in
  Alcotest.(check (list string)) "2 errors, 2 ok" [ "error"; "error"; "ok"; "ok" ]
    (sorted_statuses mixed);
  List.iter
    (fun r ->
      if status r = "error" then
        match Obs.Json.member "reason" r with
        | Some (Obs.Json.String reason) ->
          Alcotest.(check bool)
            "reason names the crash" true
            (String.length reason >= 15 && String.sub reason 0 15 = "request crashed")
        | _ -> Alcotest.fail "error response without reason")
    mixed;
  Alcotest.(check string) "daemon alive after crashes" "ok" (status extra);
  Alcotest.(check int) "errors tallied" 2 stats.Daemon.counts.Daemon.errors;
  Alcotest.(check int) "oks tallied" 3 stats.Daemon.counts.Daemon.ok

(* --- Daemon: backpressure ---------------------------------------------- *)

let test_daemon_sheds_exactly_when_full () =
  let gate = Mutex.create () in
  let started = Atomic.make 0 in
  let handler ~budget:_ _ =
    Atomic.incr started;
    Mutex.lock gate;
    Mutex.unlock gate;
    ("ok", [])
  in
  let responses, stats, _ =
    with_daemon ~workers:1 ~queue_capacity:2 handler (fun sock _ ->
        Mutex.lock gate;
        let c = connect sock in
        (* r1 occupies the single worker; r2, r3 fill the queue; r4, r5
           must be shed — and only they. *)
        send_line c (Protocol.verify_line ~id:"r1" ());
        await_started started 1;
        List.iter (fun id -> send_line c (Protocol.verify_line ~id ())) [ "r2"; "r3"; "r4"; "r5" ];
        let sheds = recv_n c 2 in
        Mutex.unlock gate;
        let oks = recv_n c 3 in
        disconnect c;
        (sheds, oks))
  in
  let sheds, oks = responses in
  Alcotest.(check (list string)) "sheds first" [ "shed"; "shed" ] (sorted_statuses sheds);
  check_ids "the overflow requests were shed" [ "r4"; "r5" ] sheds;
  Alcotest.(check (list string)) "accepted requests all finish" [ "ok"; "ok"; "ok" ]
    (sorted_statuses oks);
  check_ids "accepted ids" [ "r1"; "r2"; "r3" ] oks;
  Alcotest.(check int) "shed count" 2 stats.Daemon.counts.Daemon.shed;
  Alcotest.(check int) "ok count" 3 stats.Daemon.counts.Daemon.ok;
  Alcotest.(check int) "queue high water = capacity" 2 stats.Daemon.queue_high_water

(* --- Daemon: protocol faults on the wire -------------------------------- *)

let test_daemon_malformed_line () =
  let (bad, good), stats, _ =
    with_daemon ok_handler (fun sock _ ->
        let c = connect sock in
        send_line c (Faults.malformed_json_line ());
        let bad = recv c in
        (* the connection survives a protocol violation *)
        send_line c (Protocol.verify_line ~id:"after-bad" ());
        let good = recv c in
        disconnect c;
        (bad, good))
  in
  Alcotest.(check string) "invalid" "invalid" (status bad);
  Alcotest.(check (option string)) "id unrecoverable" None (rid bad);
  Alcotest.(check string) "same connection still usable" "ok" (status good);
  Alcotest.(check int) "invalid tallied" 1 stats.Daemon.counts.Daemon.invalid

let test_daemon_oversized_line () =
  let (complete, streamed, after), stats, _ =
    with_daemon ~max_line_bytes:512 ok_handler (fun sock _ ->
        let c = connect sock in
        (* A complete oversized line: parse_line rejects it. *)
        send_line c (Faults.oversized_line ~target_bytes:2048);
        let complete = recv c in
        (* An unterminated oversized line: the framer must answer once and
           resynchronise at the next newline instead of buffering forever. *)
        send_raw c (Faults.oversized_line ~target_bytes:600);
        let streamed = recv c in
        send_raw c "tail-of-oversized-line\n";
        send_line c (Protocol.verify_line ~id:"after-big" ());
        let after = recv c in
        disconnect c;
        (complete, streamed, after))
  in
  Alcotest.(check string) "complete oversized line invalid" "invalid" (status complete);
  Alcotest.(check string) "streamed oversized line invalid" "invalid" (status streamed);
  Alcotest.(check string) "resynced after discard" "ok" (status after);
  Alcotest.(check (option string)) "resynced id" (Some "after-big") (rid after);
  Alcotest.(check int) "both tallied invalid" 2 stats.Daemon.counts.Daemon.invalid;
  Alcotest.(check int) "healthy one tallied ok" 1 stats.Daemon.counts.Daemon.ok

let test_daemon_chopped_request () =
  let json, stats, _ =
    with_daemon ok_handler (fun sock _ ->
        let dead = connect sock in
        send_raw dead (Faults.chopped (Protocol.verify_line ~id:"never" ()));
        disconnect dead;
        Unix.sleepf 0.15;
        (* half a request is not a request: no response, no crash *)
        let c = connect sock in
        send_line c (Protocol.verify_line ~id:"alive" ());
        let r = recv c in
        disconnect c;
        r)
  in
  Alcotest.(check string) "daemon alive" "ok" (status json);
  Alcotest.(check int) "chopped line never counted as received" 1
    stats.Daemon.counts.Daemon.received;
  Alcotest.(check int) "exactly the live request answered ok" 1 stats.Daemon.counts.Daemon.ok

(* --- Daemon: budgets ---------------------------------------------------- *)

(* A handler that runs until its per-request budget expires — by timeout
   or by the drain hard-stop — and reports it, as the real engine does. *)
let budget_bound_handler ?started () ~budget _ =
  Option.iter Atomic.incr started;
  while not (Budget.expired budget) do
    Unix.sleepf 0.005
  done;
  ("timeout", [ ("reason", Obs.Json.String "deadline exceeded") ])

let test_daemon_request_timeout () =
  let (r1, r2), stats, _ =
    with_daemon ~default_timeout:0.05 (budget_bound_handler ()) (fun sock _ ->
        let c = connect sock in
        (* explicit per-request budget *)
        send_line c (Protocol.verify_line ~id:"t1" ~timeout:0.05 ());
        let r1 = recv c in
        (* no request timeout: the serve default applies *)
        send_line c (Protocol.verify_line ~id:"t2" ());
        let r2 = recv c in
        disconnect c;
        (r1, r2))
  in
  Alcotest.(check string) "request timeout enforced" "timeout" (status r1);
  Alcotest.(check string) "default timeout enforced" "timeout" (status r2);
  Alcotest.(check int) "tallied" 2 stats.Daemon.counts.Daemon.timed_out;
  Alcotest.(check bool) "drain still clean" false stats.Daemon.timeboxed

(* --- Daemon: graceful drain --------------------------------------------- *)

let test_daemon_drain_finishes_inflight () =
  let gate = Mutex.create () in
  let started = Atomic.make 0 in
  let handler ~budget:_ _ =
    Atomic.incr started;
    Mutex.lock gate;
    Mutex.unlock gate;
    ("ok", [])
  in
  let responses, stats, _ =
    with_daemon ~workers:1 handler (fun sock ctrl ->
        Mutex.lock gate;
        let c = connect sock in
        send_line c (Protocol.verify_line ~id:"inflight" ());
        await_started started 1;
        send_line c (Protocol.verify_line ~id:"queued" ());
        (* let the listener enqueue the second request, then drain *)
        Unix.sleepf 0.2;
        Daemon.request_drain ctrl;
        Mutex.unlock gate;
        let rs = recv_n c 2 in
        disconnect c;
        rs)
  in
  Alcotest.(check (list string)) "in-flight and queued both finish" [ "ok"; "ok" ]
    (sorted_statuses responses);
  check_ids "both answered" [ "inflight"; "queued" ] responses;
  Alcotest.(check bool) "no time-boxing needed" false stats.Daemon.timeboxed;
  Alcotest.(check int) "both ok" 2 stats.Daemon.counts.Daemon.ok

let test_daemon_drain_timeboxes_stragglers () =
  let started = Atomic.make 0 in
  let responses, stats, _ =
    with_daemon ~workers:1 ~drain_grace:0.05
      (budget_bound_handler ~started ())
      (fun sock ctrl ->
        let c = connect sock in
        send_line c (Protocol.verify_line ~id:"straggler" ());
        await_started started 1;
        Daemon.request_drain ctrl;
        let r = recv c in
        disconnect c;
        r)
  in
  Alcotest.(check string) "straggler cut off with a structured timeout" "timeout"
    (status responses);
  Alcotest.(check bool) "drain was time-boxed" true stats.Daemon.timeboxed;
  Alcotest.(check int) "tallied as timeout" 1 stats.Daemon.counts.Daemon.timed_out

(* --- Daemon: the full fault mix (acceptance criterion) ------------------ *)

let test_daemon_fault_mix_zero_exits () =
  let crash = Faults.raising_oracle (Failure "boom") (fun _ -> ("ok", [])) in
  (* Requests that name a plant go through the real handler, whose
     request-level rejections ("invalid", never a crash) join the mix; the
     bad-plant requests below are all rejected before any verification
     runs, so the mix stays fast and deterministic. *)
  let real = Serve_handler.make () in
  let handler ~budget (p : Protocol.verify_params) =
    if p.Protocol.plant <> None then real ~budget p
    else
      match p.Protocol.network_path with
      | Some "crash" -> crash p
      | _ ->
        if p.Protocol.timeout <> None then begin
          while not (Budget.expired budget) do
            Unix.sleepf 0.005
          done;
          ("timeout", [ ("reason", Obs.Json.String "deadline exceeded") ])
        end
        else ("ok", [ ("source", Obs.Json.String "cold") ])
  in
  let responses, stats, cfg =
    with_daemon ~max_line_bytes:1024 handler (fun sock _ ->
        (* a client that dies mid-request, alongside the main batch *)
        let dead = connect sock in
        send_raw dead (Faults.chopped (Protocol.verify_line ~id:"never" ()));
        disconnect dead;
        let c = connect sock in
        send_line c (Protocol.verify_line ~id:"h1" ());
        send_line c (Faults.malformed_json_line ());
        send_line c (Protocol.verify_line ~id:"x1" ~network_path:"crash" ());
        send_line c (Protocol.verify_line ~id:"b1" ~plant:"warp_drive" ());
        send_line c (Protocol.verify_line ~id:"h2" ());
        send_line c (Faults.oversized_line ~target_bytes:4096);
        send_line c (Protocol.verify_line ~id:"x2" ~network_path:"crash" ());
        send_line c
          (Protocol.verify_line ~id:"b2" ~plant:"poly_3d"
             ~network_path:"../data/trained_nh10.nn" ());
        send_line c (Protocol.verify_line ~id:"slow" ~timeout:0.05 ());
        send_line c (Protocol.verify_line ~id:"h3" ());
        let rs = recv_n c 10 in
        disconnect c;
        rs)
  in
  (* Every complete line got exactly one structured response. *)
  Alcotest.(check (list string))
    "statuses of the whole mix"
    [
      "error"; "error"; "invalid"; "invalid"; "invalid"; "invalid"; "ok"; "ok"; "ok"; "timeout";
    ]
    (sorted_statuses responses);
  check_ids "every identifiable request answered under its id"
    [ "b1"; "b2"; "h1"; "h2"; "h3"; "slow"; "x1"; "x2" ]
    responses;
  (* The bad-plant rejections are structured: each names the offending
     request field. *)
  let field_of id =
    match List.find_opt (fun r -> rid r = Some id) responses with
    | None -> Alcotest.failf "no response for %s" id
    | Some r -> (
      match Obs.Json.member "field" r with
      | Some (Obs.Json.String f) -> f
      | _ -> Alcotest.failf "%s: invalid response without a field name" id)
  in
  Alcotest.(check string) "unknown plant names the plant field" "plant" (field_of "b1");
  Alcotest.(check string) "arity mismatch names the network field" "network" (field_of "b2");
  let c = stats.Daemon.counts in
  Alcotest.(check int) "received counts every complete line" 10 c.Daemon.received;
  Alcotest.(check int) "ok" 3 c.Daemon.ok;
  Alcotest.(check int) "errors isolated" 2 c.Daemon.errors;
  Alcotest.(check int) "invalid" 4 c.Daemon.invalid;
  Alcotest.(check int) "timeout" 1 c.Daemon.timed_out;
  Alcotest.(check int) "nothing shed" 0 c.Daemon.shed;
  (* The daemon reached drain and returned stats: zero daemon exits.  Its
     report must pass the same validator CI gates run reports with. *)
  let report = Daemon.serve_report cfg stats in
  (match Obs.Report.validate report with
  | Ok () -> ()
  | Error e -> Alcotest.failf "serve report invalid: %s" e);
  let meta key =
    match Obs.Json.member "meta" report with
    | Some m -> Obs.Json.member key m
    | None -> None
  in
  Alcotest.(check (option (float 0.0))) "report received" (Some 10.0)
    (Option.bind (meta "received") Obs.Json.number);
  (match meta "drain" with
  | Some (Obs.Json.String "clean") -> ()
  | _ -> Alcotest.fail "drain must be reported clean");
  match (meta "p50_seconds", meta "p99_seconds") with
  | Some (Obs.Json.Float p50), Some (Obs.Json.Float p99) ->
    Alcotest.(check bool) "p50 <= p99" true (p50 <= p99)
  | _ -> Alcotest.fail "latency percentiles missing from serve report"

(* --- Daemon: real handler, cache front ---------------------------------- *)

let test_daemon_real_handler_cache_hit () =
  let store = fresh_dir () in
  let (r1, r2), stats, _ =
    with_daemon ~workers:1 (Serve_handler.make ~store ()) (fun sock _ ->
        let c = connect sock in
        send_line c (Protocol.verify_line ~id:"cold" ~width:2 ~seed:7 ());
        let r1 = recv c in
        send_line c (Protocol.verify_line ~id:"warm" ~width:2 ~seed:7 ());
        let r2 = recv c in
        disconnect c;
        (r1, r2))
  in
  Alcotest.(check string) "cold run proves" "ok" (status r1);
  Alcotest.(check string) "repeat proves" "ok" (status r2);
  (match Obs.Json.member "source" r1 with
  | Some (Obs.Json.String "cold") -> ()
  | _ -> Alcotest.fail "first run must be cold");
  (match Obs.Json.member "exported" r1 with
  | Some (Obs.Json.String _) -> ()
  | _ -> Alcotest.fail "cold proof must be exported");
  (match Obs.Json.member "source" r2 with
  | Some (Obs.Json.String "cache_hit") -> ()
  | _ -> Alcotest.fail "repeat must hit the cache");
  Alcotest.(check int) "hit tallied" 1 stats.Daemon.counts.Daemon.cache_hits;
  Alcotest.(check int) "miss tallied" 1 stats.Daemon.counts.Daemon.cache_misses

(* Plant- and scenario-addressed requests against the real handler: a named
   registry plant verifies under its bundled controller and reports its
   name back; a scenario file is a complete problem statement; a request
   naming a missing scenario file is a structured rejection. *)
let test_daemon_real_handler_plants () =
  let store = fresh_dir () in
  let scn_path = Filename.concat (fresh_dir ()) "linear.scn" in
  Scenario.save scn_path (Scenario.make ~plant:"linear_2d" ());
  let responses, stats, _ =
    with_daemon ~workers:1 (Serve_handler.make ~store ()) (fun sock _ ->
        let c = connect sock in
        send_line c (Protocol.verify_line ~id:"duff" ~plant:"duffing" ());
        send_line c (Protocol.verify_line ~id:"scn" ~scenario_path:scn_path ());
        send_line c (Protocol.verify_line ~id:"gone" ~scenario_path:"/nonexistent.scn" ());
        let rs = recv_n c 3 in
        disconnect c;
        rs)
  in
  let by_id id =
    match List.find_opt (fun r -> rid r = Some id) responses with
    | Some r -> r
    | None -> Alcotest.failf "no response for %s" id
  in
  let plant_of r =
    match Obs.Json.member "plant" r with
    | Some (Obs.Json.String p) -> p
    | _ -> Alcotest.failf "response without a plant field: %s" (Obs.Json.to_string r)
  in
  let duff = by_id "duff" in
  Alcotest.(check string) "plant request proves" "ok" (status duff);
  Alcotest.(check string) "response names the plant" "duffing" (plant_of duff);
  let scn = by_id "scn" in
  Alcotest.(check string) "scenario request proves" "ok" (status scn);
  Alcotest.(check string) "scenario response names its plant" "linear_2d" (plant_of scn);
  let gone = by_id "gone" in
  Alcotest.(check string) "missing scenario rejected" "invalid" (status gone);
  (match Obs.Json.member "field" gone with
  | Some (Obs.Json.String "scenario") -> ()
  | _ -> Alcotest.fail "missing scenario must name the scenario field");
  Alcotest.(check int) "no crashes" 0 stats.Daemon.counts.Daemon.errors

(* --- run --------------------------------------------------------------- *)

let () =
  Alcotest.run "serve"
    [
      ( "bqueue",
        [
          Alcotest.test_case "bounded and fifo" `Quick test_bqueue_bounded_fifo;
          Alcotest.test_case "close drains accepted items" `Quick test_bqueue_close_drains;
          Alcotest.test_case "bad capacity" `Quick test_bqueue_bad_capacity;
          Alcotest.test_case "concurrent producers and consumers" `Quick test_bqueue_concurrent;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "verify round-trip" `Quick test_protocol_roundtrip;
          Alcotest.test_case "defaults and ping" `Quick test_protocol_defaults_and_ping;
          Alcotest.test_case "rejects" `Quick test_protocol_rejects;
          Alcotest.test_case "unknown fields ignored" `Quick test_protocol_forward_compat;
          Alcotest.test_case "response accessors" `Quick test_protocol_response_accessors;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "healthy batch" `Quick test_daemon_healthy_batch;
          Alcotest.test_case "ping" `Quick test_daemon_ping;
          Alcotest.test_case "crash isolation" `Quick test_daemon_crash_isolation;
          Alcotest.test_case "sheds exactly when full" `Quick test_daemon_sheds_exactly_when_full;
          Alcotest.test_case "malformed line" `Quick test_daemon_malformed_line;
          Alcotest.test_case "oversized line" `Quick test_daemon_oversized_line;
          Alcotest.test_case "chopped request" `Quick test_daemon_chopped_request;
          Alcotest.test_case "request timeouts" `Quick test_daemon_request_timeout;
          Alcotest.test_case "drain finishes in-flight" `Quick test_daemon_drain_finishes_inflight;
          Alcotest.test_case "drain time-boxes stragglers" `Quick
            test_daemon_drain_timeboxes_stragglers;
          Alcotest.test_case "fault mix, zero daemon exits" `Quick
            test_daemon_fault_mix_zero_exits;
          Alcotest.test_case "real handler cache hit" `Quick test_daemon_real_handler_cache_hit;
          Alcotest.test_case "real handler plants and scenarios" `Quick
            test_daemon_real_handler_plants;
        ] );
    ]
