(* Tests for the observability layer (lib/obs): JSON round-trips, span
   collection under the domain pool, exact counter merging, the
   zero-allocation disabled path, and the run-report schema (including a
   golden-file snapshot of the printer output). *)

(* Instruments are process-global; make each test start from a clean,
   disabled sink and leave it that way. *)
let with_clean_sinks f =
  Obs.Trace.reset ();
  Obs.Metrics.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Trace.disable ();
      Obs.Metrics.disable ();
      Obs.Trace.reset ();
      Obs.Metrics.reset ())
    f

(* --- Json ----------------------------------------------------------------- *)

let sample_doc =
  Obs.Json.Obj
    [
      ("null", Obs.Json.Null);
      ("flag", Obs.Json.Bool true);
      ("int", Obs.Json.Int (-42));
      ("float", Obs.Json.Float 0.125);
      ("text", Obs.Json.String "line\n\"quoted\"\tend");
      ("empty_list", Obs.Json.List []);
      ("empty_obj", Obs.Json.Obj []);
      ( "nested",
        Obs.Json.List
          [ Obs.Json.Int 1; Obs.Json.Obj [ ("k", Obs.Json.Float 2.5) ]; Obs.Json.Bool false ]
      );
    ]

let test_json_roundtrip () =
  List.iter
    (fun indent ->
      match Obs.Json.of_string (Obs.Json.to_string ~indent sample_doc) with
      | Ok parsed ->
        Alcotest.(check bool)
          (Printf.sprintf "round-trip (indent=%b)" indent)
          true (parsed = sample_doc)
      | Error msg -> Alcotest.failf "parse failed: %s" msg)
    [ true; false ]

let test_json_errors () =
  let bad = [ "{"; "[1,]"; "tru"; "\"open"; "{\"a\":1} x"; "" ] in
  List.iter
    (fun s ->
      match Obs.Json.of_string s with
      | Ok _ -> Alcotest.failf "accepted malformed input %S" s
      | Error _ -> ())
    bad

let test_json_accessors () =
  let doc = Obs.Json.Obj [ ("a", Obs.Json.Int 3); ("b", Obs.Json.Float 1.5) ] in
  Alcotest.(check bool) "member hit" true (Obs.Json.member "a" doc = Some (Obs.Json.Int 3));
  Alcotest.(check bool) "member miss" true (Obs.Json.member "z" doc = None);
  Alcotest.(check bool) "number of int" true (Obs.Json.number (Obs.Json.Int 3) = Some 3.0);
  Alcotest.(check bool) "number of float" true
    (Obs.Json.number (Obs.Json.Float 1.5) = Some 1.5);
  Alcotest.(check bool) "number of string" true
    (Obs.Json.number (Obs.Json.String "x") = None)

(* --- Trace ---------------------------------------------------------------- *)

(* Span nesting across pool workers: every task opens an outer span with a
   nested inner span; all spans must be collected once the batch returns,
   with parents resolved within the same domain and sane timestamps. *)
let test_trace_nesting_under_pool () =
  with_clean_sinks (fun () ->
      Obs.Trace.enable ();
      let n = 8 in
      let results =
        Pool.parallel_map ~jobs:4
          (fun i ->
            Obs.Trace.with_span "task" (fun () ->
                Obs.Trace.with_span "inner" (fun () -> 2 * i)))
          (Array.init n Fun.id)
      in
      Alcotest.(check bool) "results intact" true (results = Array.init n (fun i -> 2 * i));
      let spans = Obs.Trace.spans () in
      let by_id = Hashtbl.create 16 in
      List.iter (fun (s : Obs.Trace.span) -> Hashtbl.replace by_id s.Obs.Trace.id s) spans;
      let tasks = List.filter (fun s -> s.Obs.Trace.name = "task") spans in
      let inners = List.filter (fun s -> s.Obs.Trace.name = "inner") spans in
      Alcotest.(check int) "one task span per element" n (List.length tasks);
      Alcotest.(check int) "one inner span per element" n (List.length inners);
      List.iter
        (fun s ->
          Alcotest.(check bool) "task spans are roots" true (s.Obs.Trace.parent = None))
        tasks;
      List.iter
        (fun (s : Obs.Trace.span) ->
          match s.Obs.Trace.parent with
          | None -> Alcotest.fail "inner span lost its parent"
          | Some p ->
            let parent = Hashtbl.find by_id p in
            Alcotest.(check string) "parent is a task span" "task" parent.Obs.Trace.name;
            Alcotest.(check int) "parent on the same domain" parent.Obs.Trace.domain
              s.Obs.Trace.domain;
            Alcotest.(check bool) "nested inside parent" true
              (s.Obs.Trace.t_start >= parent.Obs.Trace.t_start
              && s.Obs.Trace.t_stop <= parent.Obs.Trace.t_stop))
        inners;
      List.iter
        (fun (s : Obs.Trace.span) ->
          Alcotest.(check bool) "non-negative duration" true (Obs.Trace.duration s >= 0.0))
        spans;
      (* spans () is sorted by start time. *)
      let rec sorted = function
        | (a : Obs.Trace.span) :: (b : Obs.Trace.span) :: rest ->
          a.Obs.Trace.t_start <= b.Obs.Trace.t_start && sorted (b :: rest)
        | _ -> true
      in
      Alcotest.(check bool) "sorted by start time" true (sorted spans))

let test_trace_records_exceptions () =
  with_clean_sinks (fun () ->
      Obs.Trace.enable ();
      (try Obs.Trace.with_span "raises" (fun () -> failwith "boom") with Failure _ -> ());
      match Obs.Trace.spans () with
      | [ s ] -> Alcotest.(check string) "span closed on raise" "raises" s.Obs.Trace.name
      | spans -> Alcotest.failf "expected 1 span, got %d" (List.length spans))

(* --- Metrics -------------------------------------------------------------- *)

(* Counter adds from concurrent pool workers must merge exactly: totals for
   a fixed amount of work are independent of scheduling. *)
let test_counter_merge_exact () =
  with_clean_sinks (fun () ->
      Obs.Metrics.enable ();
      let c = Obs.Metrics.counter "test.merge" in
      let n = 1000 in
      ignore
        (Pool.parallel_map ~jobs:4
           (fun i ->
             Obs.Metrics.add c (i + 1);
             Obs.Metrics.incr c)
           (Array.init n Fun.id));
      let expected = (n * (n + 1) / 2) + n in
      Alcotest.(check int) "exact merged total" expected (Obs.Metrics.value c);
      Alcotest.(check bool) "visible in dump" true
        (List.mem_assoc "test.merge" (Obs.Metrics.dump_counters ()));
      Alcotest.(check int) "dump agrees" expected
        (List.assoc "test.merge" (Obs.Metrics.dump_counters ())))

let test_metrics_disabled_is_noop () =
  with_clean_sinks (fun () ->
      let c = Obs.Metrics.counter "test.disabled" in
      Obs.Metrics.add c 5;
      Obs.Metrics.incr c;
      Alcotest.(check int) "disabled counter stays zero" 0 (Obs.Metrics.value c))

(* Disabled-sink hot-path contract: with_span and counter bumps must not
   allocate when tracing/metrics are off.  The thunk is pre-allocated so the
   loop itself is the only thing measured; the bound leaves slack for GC
   bookkeeping noise but catches any per-event allocation (10k events at
   even one word each would be ~80kB). *)
let test_disabled_sink_no_allocation () =
  with_clean_sinks (fun () ->
      let c = Obs.Metrics.counter "test.alloc" in
      let thunk () = Obs.Metrics.incr c in
      (* Warm up so any one-time allocation is out of the measured window. *)
      Obs.Trace.with_span "warmup" thunk;
      let iters = 10_000 in
      let before = Gc.allocated_bytes () in
      for _ = 1 to iters do
        Obs.Trace.with_span "hot" thunk
      done;
      let delta = Gc.allocated_bytes () -. before in
      Alcotest.(check bool)
        (Printf.sprintf "allocation delta %.0fB under 1kB" delta)
        true (delta < 1024.0))

(* --- Report --------------------------------------------------------------- *)

let golden_report () =
  Obs.Report.make ~generated_at:0.0
    ~meta:[ ("outcome", Obs.Json.String "proved"); ("level", Obs.Json.Float 0.125) ]
    ~stages:
      [
        Obs.Report.stage ~name:"simulation" ~seconds:0.25 ();
        Obs.Report.stage ~calls:3 ~name:"lp" ~seconds:0.5 ();
        Obs.Report.stage ~calls:2 ~name:"condition5" ~seconds:1.5 ();
      ]
    ~total_seconds:2.5
    ~counters:[ ("lp.pivots", 141); ("solver.branches", 325) ]
    ()

let test_report_validate () =
  let report = golden_report () in
  (match Obs.Report.validate report with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "valid report rejected: %s" msg);
  (* 2.25s of stages against 2.5s total = 90% coverage. *)
  (match Obs.Report.validate ~min_stage_coverage:0.8 report with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "coverage 0.8 rejected: %s" msg);
  (match Obs.Report.validate ~min_stage_coverage:0.95 report with
  | Ok () -> Alcotest.fail "coverage 0.95 should fail at 90%"
  | Error _ -> ());
  let expect_error label doc =
    match Obs.Report.validate doc with
    | Ok () -> Alcotest.failf "%s accepted" label
    | Error _ -> ()
  in
  expect_error "non-object" (Obs.Json.Int 1);
  expect_error "wrong schema"
    (Obs.Json.Obj [ ("schema", Obs.Json.String "other"); ("schema_version", Obs.Json.Int 1) ]);
  expect_error "future version"
    (Obs.Json.Obj
       [
         ("schema", Obs.Json.String Obs.Report.schema_name);
         ("schema_version", Obs.Json.Int 999);
       ]);
  expect_error "negative stage seconds"
    (Obs.Json.Obj
       [
         ("schema", Obs.Json.String Obs.Report.schema_name);
         ("schema_version", Obs.Json.Int Obs.Report.schema_version);
         ("generated_at_unix", Obs.Json.Float 0.0);
         ("meta", Obs.Json.Obj []);
         ("total_seconds", Obs.Json.Float 1.0);
         ( "stages",
           Obs.Json.List
             [
               Obs.Json.Obj
                 [ ("name", Obs.Json.String "bad"); ("seconds", Obs.Json.Float (-1.0)) ];
             ] );
       ])

let test_report_roundtrip_through_printer () =
  let report = golden_report () in
  match Obs.Json.of_string (Obs.Json.to_string report) with
  | Error msg -> Alcotest.failf "printed report does not parse: %s" msg
  | Ok parsed ->
    (match Obs.Report.validate ~min_stage_coverage:0.8 parsed with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "parsed report rejected: %s" msg)

(* Snapshot of the printer output: any change to the report schema or the
   JSON renderer must be a conscious golden-file update. *)
let test_report_golden () =
  let path = Filename.concat "golden" "run_report.json" in
  let ic = open_in_bin path in
  let golden =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  Alcotest.(check string) "run_report.json snapshot" golden
    (Obs.Json.to_string (golden_report ()))

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "malformed inputs" `Quick test_json_errors;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
        ] );
      ( "trace",
        [
          Alcotest.test_case "nesting under pool jobs=4" `Quick test_trace_nesting_under_pool;
          Alcotest.test_case "closes on raise" `Quick test_trace_records_exceptions;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "exact merge across workers" `Quick test_counter_merge_exact;
          Alcotest.test_case "disabled is a no-op" `Quick test_metrics_disabled_is_noop;
          Alcotest.test_case "disabled sink does not allocate" `Quick
            test_disabled_sink_no_allocation;
        ] );
      ( "report",
        [
          Alcotest.test_case "validate" `Quick test_report_validate;
          Alcotest.test_case "printer round-trip" `Quick test_report_roundtrip_through_printer;
          Alcotest.test_case "golden snapshot" `Quick test_report_golden;
        ] );
    ]
