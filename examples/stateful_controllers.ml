(* Discrete-time verification with stateful (recurrent) controllers — the
   paper's "future work" section, implemented.

   A recurrent controller's hidden state becomes part of the verified state
   space: the closed loop is a discrete-time map over [derr; θ_err; h], and
   the barrier conditions are checked over the augmented box.  This example
   verifies a feedforward baseline and a leaky recurrent controller, and
   demonstrates why the *leak* matters (a hard Elman update jumps the
   hidden state too fast for any quadratic certificate).

   Run with: dune exec examples/stateful_controllers.exe
   (the recurrent verification explores a 3-D state space; allow a few
   minutes) *)

let pf = Format.printf

let describe name (report : Discrete.report) =
  match report.Discrete.outcome with
  | Discrete.Proved cert ->
    pf "%-22s PROVED   level %.4f, %d iteration(s), %d counterexample(s), %.1f s@." name
      cert.Discrete.level report.Discrete.candidate_iterations
      (List.length report.Discrete.counterexamples)
      report.Discrete.total_time
  | Discrete.Failed reason ->
    let msg =
      match reason with
      | Discrete.Lp_failed s -> "LP failed: " ^ s
      | Discrete.Cex_budget_exhausted -> "counterexample budget exhausted"
      | Discrete.Level_range_empty -> "no separating level"
      | Discrete.Level_budget_exhausted -> "level search exhausted"
      | Discrete.Solver_inconclusive s -> "solver inconclusive (" ^ s ^ ")"
      | Discrete.Timeout stage -> "deadline exceeded during " ^ stage
      | Discrete.Seed_shortfall (got, wanted) ->
        Printf.sprintf "seed shortfall: %d of %d" got wanted
    in
    pf "%-22s no proof (%s), %.1f s@." name msg report.Discrete.total_time

let () =
  (* Baseline: the feedforward reference controller in discrete time
     (forward-Euler plant, dt = 0.1). *)
  let ff = Discrete.of_network ~dt:0.1 Case_study.reference_controller in
  describe "feedforward (dt=0.1)" (Discrete.verify ~rng:(Rng.create 5) ff);

  (* A leaky recurrent controller approximating the same control law:
     h' = (1-λ)h + λ·tanh(0.48 d + 0.64 θ + 0.2 h),  u = 1.25 h'.
     Near its fixed point h* ≈ 0.6 d + 0.8 θ, so u ≈ 0.75 d + θ — the
     reference gains — but with genuine internal memory. *)
  let rnn leak =
    Rnn.of_weights
      ~w_input:[| [| 0.48; 0.64 |] |]
      ~w_recurrent:[| [| 0.2 |] |]
      ~b_hidden:[| 0.0 |]
      ~w_output:[| [| 1.25 |] |]
      ~b_output:[| 0.0 |]
      ~output_activation:Nn.Linear ~leak ()
  in
  (* Simulate first (the informal validation step). *)
  let sys = Discrete.of_rnn ~dt:0.1 (rnn 0.2) in
  let orbit = Discrete.iterate sys (Discrete.default_config ~dim:3) [| 3.0; 0.5; 0.0 |] in
  let final = Ode.final_state orbit in
  pf "leaky RNN orbit from (3.0, 0.5, h=0): %d steps to (%.4f, %.4f, %.4f)@."
    (Ode.trace_length orbit) final.(0) final.(1) final.(2);

  (* Verify over the augmented (derr, θ_err, h) box.  The hidden state
     needs a tighter δ than the planar case: the certificate's margin per
     step is small, and coarse boxes produce spurious δ-sat witnesses. *)
  let config =
    {
      (Discrete.default_config ~dim:3) with
      Discrete.smt =
        { Solver.default_options with Solver.delta = 1e-5; max_branches = 3_000_000 };
    }
  in
  describe "leaky RNN (lambda=0.2)" (Discrete.verify ~config ~rng:(Rng.create 5) sys);
  (* Expected: PROVED with a tilted ellipsoid certificate mixing plant and
     hidden-state coordinates (see EXPERIMENTS.md for the exact W). *)
  pf
    "@.A hard Elman update (lambda = 1) jumps h across its whole range in one step —@.\
     e.g. from (d, θ, h) = (-3, 0, 0) the state moves to h' = tanh(-1.44) ≈ -0.89,@.\
     increasing every positive-definite quadratic in h.  No quadratic certificate@.\
     over the augmented box exists, and the engine correctly reports the genuine@.\
     counterexample instead of a proof.@."
