(* Regenerate data/controllers/: one .nn file per registry plant whose
   bundled default controller is a network.  The files ship with the repo so
   scenario documents can reference controllers by path; rerun this after
   changing a registry default. *)

let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "data/controllers" in
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  List.iter
    (fun p ->
      match p.Plant.default_controller with
      | Plant.Network net ->
        let path = Filename.concat dir (p.Plant.name ^ ".nn") in
        Nn.save net path;
        Printf.printf "wrote %s\n" path
      | Plant.Analytic _ | Plant.Zero -> ())
    (Registry.plants ())
